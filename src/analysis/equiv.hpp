// Translation validation for the codegen optimizer (Alive2-style, scoped to
// this pipeline): both the unoptimized and the optimized emission of a kernel
// are run through a symbolic evaluator that produces a *store summary* — the
// ordered list of (buffer, address, value) effects the generated C program
// performs, with addresses and guard conditions as arith::Expr and values as
// small operation trees. The two summaries are then compared store-by-store:
//
//   * addresses must be provably equal under the kernel's loop domains and
//     size-parameter facts (an independent re-derivation: polynomial division
//     discharges the Div/Mod rewrites of simplifyIndex rather than trusting
//     them),
//   * every pad-guard side the optimizer dropped must be re-proven redundant
//     from the *reference* (as-written) guard expression,
//   * value trees must match in lockstep (same operators, same operand
//     order, provably-equal integer subterms).
//
// Validated passes: index simplification and guard elimination — the two
// rewrites that change what the generated program computes. Trusted (argued
// once, not re-checked per kernel): arith canonical constructors, CSE and
// hoisting (pure naming), the chunk schedule (loop-geometry coverage), and
// restrict qualification (ABI non-aliasing). See DESIGN.md §10.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/interval.hpp"
#include "arith/expr.hpp"
#include "memory/kernel_def.hpp"
#include "memory/specialization.hpp"

namespace lifta::analysis {

struct SummaryVal;
using SummaryValPtr = std::shared_ptr<const SummaryVal>;

/// One zero-Pad guard wrapped around a loaded value: the load happens iff
/// `0 <= adjusted < size`, otherwise the value is the pad zero. The
/// optimized summarizer marks sides the emitter's prover discharged (the
/// emitted code omits them); the checker re-proves every dropped side.
struct ValGuard {
  arith::Expr adjusted;
  arith::Expr size;
  bool droppedLower = false;
  bool droppedUpper = false;
};

/// A node of the canonical value tree. Scalar C code the emitter prints is
/// abstracted to: opaque literals (Lit), tracked integer expressions
/// (Index), memory reads (Load), pad-guard wrappers (Guard) and everything
/// else as an operator application (Apply) whose tag includes enough
/// identity (operator token, callee name, reduction loop variables) that a
/// lockstep structural walk distinguishes genuinely different computations.
struct SummaryVal {
  enum class Kind { Lit, Index, Load, Guard, Apply };
  Kind kind = Kind::Lit;
  std::string text;      // Lit: literal/opaque C text; Apply: operator tag
  arith::Expr index;     // Index: tracked integer value; Load: flat address
  std::string buffer;    // Load: buffer name
  std::vector<ValGuard> guards;     // Guard only
  std::vector<SummaryValPtr> args;  // Apply operands / Guard inner value
};

/// One memory effect of the generated program, in emission order.
struct StoreSummary {
  std::string buffer;
  arith::Expr address;   // flat element index (simplified when optimized)
  SummaryValPtr value;
  /// The store as written in the source kernel definition (raw, pre-
  /// simplification address) — the origin every diagnostic cites.
  std::string context;
};

/// The full symbolic-execution result for one kernel × one optimizer mode.
struct KernelSummary {
  std::string kernelName;
  bool optimized = false;
  std::vector<StoreSummary> stores;
  /// Loop-variable domains registered during the walk (iv in [lo, hi],
  /// range nonempty) — the fact base the equivalence checker proves under.
  std::map<std::string, Domain> domains;
  /// Size parameters (nonnegative by construction).
  std::set<std::string> sizeVars;
};

/// Symbolically evaluates the kernel the way the emitter would generate it:
/// `optimized=false` keeps raw view-resolved addresses and full guards;
/// `optimized=true` applies the same simplifyIndex/proveGuardSides pipeline
/// (with an identically-seeded prover) the optimizing emitter uses. Local
/// naming is deterministic, so two walks over the same IR align store-for-
/// store. Throws CodegenError on IR the emitter would also reject.
KernelSummary summarizeKernel(const memory::KernelDef& def, bool optimized);

/// As above under a constant specialization: every specialized scalar
/// parameter is replaced by its concrete value in both index algebra and
/// value trees, at the same structural points the specializing emitter
/// substitutes. Substituting a parameter by the value the host binds is a
/// renaming of the environment, so validating spec'd-reference against
/// spec'd-optimized extends the translation-validation gate over the
/// specialization pass itself (DESIGN.md §12).
KernelSummary summarizeKernel(const memory::KernelDef& def, bool optimized,
                              const memory::Specialization& spec);

/// Compares two summaries of the same kernel; every divergence that is not
/// provably semantics-preserving becomes an error-severity PassId::Equiv
/// diagnostic citing the pre-optimization store (`origin`) and the
/// optimized address (`index`). Exposed separately from validateTranslation
/// so tests can seed miscompile mutations into a summary.
Report compareSummaries(const KernelSummary& ref, const KernelSummary& opt);

/// summarize(unoptimized) vs summarize(optimized), compared.
Report validateTranslation(const memory::KernelDef& def);

/// Specialized form: both walks run under `spec`, so the comparison covers
/// constant specialization in addition to simplify/guard elimination.
Report validateTranslation(const memory::KernelDef& def,
                           const memory::Specialization& spec);

/// Codegen-gate form: throws lifta::AnalysisError when validation finds any
/// error-severity diagnostic. No-op when verification is disabled
/// (LIFTA_SKIP_VERIFY / setVerifyEnabled(false)).
void verifyTranslation(const memory::KernelDef& def);

/// Gate form of the specialized validation.
void verifyTranslation(const memory::KernelDef& def,
                       const memory::Specialization& spec);

/// True when `a == b` for every assignment consistent with `p`. Structural
/// equality first; otherwise the difference is normalized (Mod eliminated
/// via x%y == x - y*(x/y); innermost Div nodes replaced by their exact
/// polynomial quotient when the remainder is provably in [0, y) and the
/// operands provably nonnegative, or by an opaque fresh variable so common
/// subterms still cancel) and both `d >= 0` and `-d >= 0` are proven.
bool provenEqual(const Prover& p, const arith::Expr& a, const arith::Expr& b);

/// Compact rendering of a value tree for diagnostics and tests.
std::string describeVal(const SummaryValPtr& v);

}  // namespace lifta::analysis
