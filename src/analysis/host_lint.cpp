#include "analysis/host_lint.hpp"

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/verify.hpp"
#include "common/error.hpp"
#include "ir/typecheck.hpp"
#include "memory/allocator.hpp"

namespace lifta::analysis {

namespace {

using host::HOp;
using host::HostNode;
using host::HostPtr;

std::string label(const HostNode* n) {
  return n->name + "#" + std::to_string(n->id);
}

/// The device buffer a node's value lives in: WriteTo aliases its
/// destination, everything else owns its own buffer.
const HostNode* resolveBuffer(const HostNode* n) {
  while (n != nullptr && n->op == HOp::WriteTo) n = n->dest.get();
  return n;
}

/// Direct operands of a node, as used by CompiledHostProgram::evalDevice.
std::vector<const HostNode*> operandsOf(const HostNode* n) {
  std::vector<const HostNode*> out;
  if (n->input) out.push_back(n->input.get());
  if (n->dest) out.push_back(n->dest.get());
  if (n->call) out.push_back(n->call.get());
  for (const auto& a : n->kernel.args) {
    if (a.buffer) out.push_back(a.buffer.get());
  }
  return out;
}

class HostLinter {
 public:
  HostLinter(const host::HostProgram& prog, const std::string& subject)
      : prog_(prog) {
    report_.subject = subject;
  }

  Report run() {
    for (const auto& n : prog_.nodes()) {
      if (n->op == HOp::KernelCall) checkKernelCall(n.get());
      if (n->op == HOp::WriteTo) checkWriteTo(n.get());
      if (n->op == HOp::ToHost) checkToHost(n.get());
    }
    checkTransfers();
    checkDeadCompute();
    checkOverlappingWrites();
    return std::move(report_);
  }

 private:
  void add(Severity sev, const HostNode* node, std::string msg) {
    Diagnostic d;
    d.severity = sev;
    d.pass = PassId::HostLint;
    d.kernel = report_.subject;
    d.node = label(node);
    d.message = std::move(msg);
    report_.add(std::move(d));
  }

  /// Whether a generated kernel call produces a value (an implicit output
  /// buffer). Handwritten calls never do — the runtime cannot know their
  /// result buffer. Unplannable kernels are left to codegen's own errors.
  bool callHasValue(const HostNode* call) {
    auto it = hasValue_.find(call);
    if (it != hasValue_.end()) return it->second;
    bool value = false;
    if (call->kernel.def.has_value()) {
      try {
        auto def = *call->kernel.def;
        ir::typecheck(def.body);
        value = memory::planMemory(def).hasOutBuffer;
      } catch (const Error&) {
        value = true;  // malformed: don't pile lint errors on top
      }
    }
    hasValue_[call] = value;
    return value;
  }

  /// A node usable as a device value: ToGPU, value-producing KernelCall, or
  /// WriteTo (whose value is its destination buffer).
  void checkDeviceValue(const HostNode* user, const HostNode* value,
                        const std::string& role) {
    if (value->op == HOp::Param) {
      add(Severity::Error, user,
          "host parameter '" + value->name + "' used directly as " + role +
              "; wrap it in toGPU(...)");
    } else if (value->op == HOp::KernelCall && !callHasValue(value)) {
      add(Severity::Error, user,
          "effect-only kernel call '" + label(value) +
              "' produces no device value but is used as " + role +
              "; wrap it in writeTo(dest, call)");
    }
  }

  void checkKernelCall(const HostNode* n) {
    int slot = 0;
    for (const auto& a : n->kernel.args) {
      if (a.buffer) {
        checkDeviceValue(n, a.buffer.get(),
                         "argument " + std::to_string(slot) + " of kernel '" +
                             n->name + "'");
      }
      ++slot;
    }
  }

  void checkWriteTo(const HostNode* n) {
    checkDeviceValue(n, n->dest.get(), "a WriteTo destination");
  }

  void checkToHost(const HostNode* n) {
    const HostNode* v = n->input.get();
    checkDeviceValue(n, v, "a ToHost source (output '" + n->name + "')");
    if (v->op == HOp::ToGPU) {
      add(Severity::Warning, n,
          "output '" + n->name + "' reads back '" + label(v) +
              "' untouched by any kernel (device round trip)");
    }
  }

  void checkTransfers() {
    std::map<std::string, const HostNode*> uploaded;
    for (const auto& n : prog_.nodes()) {
      if (n->op != HOp::ToGPU) continue;
      const std::string& param = n->input->name;
      auto [it, fresh] = uploaded.emplace(param, n.get());
      if (!fresh) {
        add(Severity::Warning, n.get(),
            "host parameter '" + param + "' already uploaded as '" +
                label(it->second) +
                "' (redundant transfer and a second device copy)");
      }
    }
  }

  void checkDeadCompute() {
    std::set<const HostNode*> consumed;
    for (const auto& n : prog_.nodes()) {
      for (const HostNode* op : operandsOf(n.get())) consumed.insert(op);
    }
    for (const auto& [node, name] : prog_.outputs()) consumed.insert(node.get());
    for (const auto& n : prog_.nodes()) {
      if (consumed.count(n.get()) != 0) continue;
      if (n->op == HOp::KernelCall || n->op == HOp::WriteTo) {
        add(Severity::Error, n.get(),
            "dead compute: result of '" + label(n.get()) +
                "' never reaches ToHost or another kernel, so it is never "
                "evaluated");
      } else if (n->op == HOp::ToGPU) {
        add(Severity::Warning, n.get(),
            "unused transfer: '" + label(n.get()) +
                "' is never read by any kernel or output");
      } else if (n->op == HOp::DeviceAlloc) {
        add(Severity::Warning, n.get(),
            "unused allocation: '" + label(n.get()) +
                "' is never touched by any kernel or output");
      }
    }
  }

  bool reachable(const HostNode* from, const HostNode* target) {
    if (from == target) return true;
    std::set<const HostNode*> seen;
    std::vector<const HostNode*> stack{from};
    while (!stack.empty()) {
      const HostNode* n = stack.back();
      stack.pop_back();
      if (!seen.insert(n).second) continue;
      for (const HostNode* op : operandsOf(n)) {
        if (op == target) return true;
        stack.push_back(op);
      }
    }
    return false;
  }

  bool ordered(const HostNode* a, const HostNode* b) {
    return reachable(a, b) || reachable(b, a);
  }

  struct Action {
    const HostNode* node;    // the KernelCall / WriteTo performing the access
    const HostNode* buffer;  // identity node of the device buffer
    bool write;
  };

  void checkOverlappingWrites() {
    std::vector<Action> actions;
    for (const auto& n : prog_.nodes()) {
      if (n->op == HOp::WriteTo) {
        actions.push_back({n.get(), resolveBuffer(n->dest.get()), true});
      }
      if (n->op != HOp::KernelCall) continue;
      // Generated kernels declare which parameters they write (the memory
      // plan's writable flags, in ABI slot order). Handwritten kernels give
      // us nothing to go on; treat their arguments as reads.
      std::vector<bool> writable;
      if (n->kernel.def.has_value()) {
        try {
          auto def = *n->kernel.def;
          ir::typecheck(def.body);
          const auto plan = memory::planMemory(def);
          for (const auto& arg : plan.args) writable.push_back(arg.writable);
        } catch (const Error&) {
          writable.clear();
        }
      }
      std::size_t slot = 0;
      for (const auto& a : n->kernel.args) {
        const bool w = slot < writable.size() && writable[slot];
        if (a.buffer && a.buffer->op != HOp::Param) {
          actions.push_back({n.get(), resolveBuffer(a.buffer.get()), w});
        }
        ++slot;
      }
    }
    std::set<std::string> reported;
    for (std::size_t i = 0; i < actions.size(); ++i) {
      if (!actions[i].write) continue;
      for (std::size_t j = 0; j < actions.size(); ++j) {
        if (i == j) continue;
        const Action& w = actions[i];
        const Action& o = actions[j];
        if (w.node == o.node || w.buffer != o.buffer) continue;
        if (o.write && j < i) continue;  // report each write/write pair once
        if (ordered(w.node, o.node)) continue;
        const std::string key = label(w.node) + "|" + label(o.node) + "|" +
                                label(w.buffer) + (o.write ? "|ww" : "|rw");
        if (!reported.insert(key).second) continue;
        if (o.write) {
          add(Severity::Error, w.node,
              "overlapping writes: '" + label(w.node) + "' and '" +
                  label(o.node) + "' both write device buffer '" +
                  label(w.buffer) +
                  "' with no dependence between them; the final contents "
                  "depend on evaluation order");
        } else {
          add(Severity::Warning, w.node,
              "read/write hazard: '" + label(w.node) + "' writes device "
              "buffer '" + label(w.buffer) + "' while '" + label(o.node) +
                  "' reads it, with no dependence ordering the two");
        }
      }
    }
  }

  const host::HostProgram& prog_;
  Report report_;
  std::map<const HostNode*, bool> hasValue_;
};

}  // namespace

Report lintHostProgram(const host::HostProgram& prog,
                       const std::string& subjectName) {
  return HostLinter(prog, subjectName).run();
}

void verifyHostProgram(const host::HostProgram& prog,
                       const std::string& subjectName) {
  if (!verifyEnabled()) return;
  const Report report = lintHostProgram(prog, subjectName);
  if (!report.hasErrors()) return;
  std::string msg = "host program failed static verification:\n";
  for (const auto& d : report.diagnostics) {
    if (d.severity != Severity::Error) continue;
    msg += "  " + std::string(passName(d.pass)) + ": " + d.message + "\n";
  }
  msg += "(set LIFTA_SKIP_VERIFY=1 to bypass)";
  throw AnalysisError(msg);
}

}  // namespace lifta::analysis
