#include "analysis/equiv.hpp"

#include <utility>

#include "analysis/simplify.hpp"
#include "analysis/verify.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "ir/typecheck.hpp"
#include "memory/allocator.hpp"
#include "view/view.hpp"

namespace lifta::analysis {

using arith::Expr;
using arith::Kind;
using ir::ExprPtr;
using ir::Node;
using ir::Op;
using view::ViewPtr;

namespace {

SummaryValPtr makeLit(std::string text) {
  auto v = std::make_shared<SummaryVal>();
  v->kind = SummaryVal::Kind::Lit;
  v->text = std::move(text);
  return v;
}

SummaryValPtr makeIndex(Expr e) {
  auto v = std::make_shared<SummaryVal>();
  v->kind = SummaryVal::Kind::Index;
  v->index = std::move(e);
  return v;
}

SummaryValPtr makeLoad(std::string buffer, Expr address) {
  auto v = std::make_shared<SummaryVal>();
  v->kind = SummaryVal::Kind::Load;
  v->buffer = std::move(buffer);
  v->index = std::move(address);
  return v;
}

SummaryValPtr makeGuard(std::vector<ValGuard> guards, SummaryValPtr inner) {
  auto v = std::make_shared<SummaryVal>();
  v->kind = SummaryVal::Kind::Guard;
  v->guards = std::move(guards);
  v->args.push_back(std::move(inner));
  return v;
}

SummaryValPtr makeApply(std::string tag, std::vector<SummaryValPtr> args) {
  auto v = std::make_shared<SummaryVal>();
  v->kind = SummaryVal::Kind::Apply;
  v->text = std::move(tag);
  v->args = std::move(args);
  return v;
}

const char* binOpTag(ir::BinOp b) {
  switch (b) {
    case ir::BinOp::Add: return "+";
    case ir::BinOp::Sub: return "-";
    case ir::BinOp::Mul: return "*";
    case ir::BinOp::Div: return "/";
    case ir::BinOp::Min: return "min";
    case ir::BinOp::Max: return "max";
    case ir::BinOp::Eq: return "==";
    case ir::BinOp::Ne: return "!=";
    case ir::BinOp::Lt: return "<";
    case ir::BinOp::Le: return "<=";
    case ir::BinOp::Gt: return ">";
    case ir::BinOp::Ge: return ">=";
    case ir::BinOp::And: return "&&";
    case ir::BinOp::Or: return "||";
  }
  return "?";
}

/// Symbolic evaluator producing a KernelSummary. The traversal mirrors
/// codegen::Emitter one-for-one (same structural decisions: collapsed maps,
/// straight-line single-element MapSeq, lazy lets, Concat offsets, element-
/// before-loop ArrayCons order) so the summary describes the program the
/// emitter generates, not a lookalike. Uses view::resolveAccess — the same
/// structured resolution the optimizing emitter prints from.
class Summarizer {
 public:
  Summarizer(const memory::KernelDef& def, bool optimized,
             const memory::Specialization& spec = {})
      : def_(def), optimized_(optimized), spec_(spec) {}

  KernelSummary run() {
    ir::typecheck(def_.body);
    summary_.kernelName = def_.name;
    summary_.optimized = optimized_;

    for (const auto& p : def_.params) {
      if (p->type->isArray()) {
        env_[p.get()] = Binding{view::memView(p->name, p->type), {}};
        noteSizeVars(p->type->flatCount());
        if (optimized_) {
          // Identical seeding to Emitter::seedProver: size parameters in
          // array extents are nonnegative by construction.
          for (const auto& v : p->type->flatCount().freeVars()) {
            prover_.assumeAtLeast(v, 0);
          }
        }
      } else if (isIntScalar(p->type)) {
        // Specialized int scalars bind to their constant, exactly as the
        // emitter's scalarParamCode folds them into index algebra.
        auto si = spec_.ints.find(p->name);
        const Expr iv = si != spec_.ints.end() ? Expr(si->second)
                                               : Expr::var(p->name);
        env_[p.get()] = Binding{nullptr, EV{makeIndex(iv), iv}};
      } else {
        auto sr = spec_.reals.find(p->name);
        const std::string code =
            sr != spec_.reals.end()
                ? "(" + memory::Specialization::realLiteral(sr->second,
                                                            def_.real) + ")"
                : p->name;
        env_[p.get()] = Binding{nullptr, EV{makeLit(code), {}}};
      }
    }

    ViewPtr topDest;
    if (memory::isEffectOnly(def_.body)) {
      // All writes happen through WriteTo destinations.
    } else if (def_.outAliasParam) {
      topDest = env_.at(findParam(*def_.outAliasParam).get()).view;
    } else {
      topDest = view::memView("out", def_.body->type);
      noteSizeVars(def_.body->type->flatCount());
    }
    collectArray(def_.body, topDest);

    finalizeSizeVars();
    return std::move(summary_);
  }

 private:
  /// A value in flight: the summary tree plus, when the scalar is an
  /// integer the index algebra can follow, its arith::Expr form.
  struct EV {
    SummaryValPtr val;
    std::optional<Expr> ival;
  };
  struct Binding {
    ViewPtr view;
    std::optional<EV> scalar;
  };

  static bool isIntScalar(const ir::TypePtr& t) {
    return t->isScalar() && t->scalarKind() == ir::ScalarKind::Int;
  }

  const ExprPtr& findParam(const std::string& name) const {
    for (const auto& p : def_.params) {
      if (p->name == name) return p;
    }
    throw CodegenError("unknown parameter: " + name);
  }

  std::string fresh(const std::string& base) {
    return base + "_" + std::to_string(counter_++);
  }

  void noteSizeVars(const Expr& e) {
    for (const auto& v : e.freeVars()) rawSizeVars_.insert(v);
  }

  void finalizeSizeVars() {
    for (const auto& v : rawSizeVars_) {
      if (summary_.domains.count(v) || atoms_.count(v) || defs_.count(v)) {
        continue;
      }
      summary_.sizeVars.insert(v);
    }
  }

  void registerLoop(const std::string& iv, const Expr& len) {
    summary_.domains[iv] = Domain{Expr(0), len - Expr(1), true};
    noteSizeVars(len);
    if (optimized_) {
      // Identical to Emitter::enterLoopDomain: iv in [0, len-1], nonempty.
      prover_.setDomain(iv, Domain{Expr(0), len - Expr(1), true});
      prover_.assumeNonNegative(len - Expr(1));
    }
  }

  // --- access resolution ---------------------------------------------------

  Expr atomFor(const std::string& mem, const Expr& rawIndex) {
    const std::string key = mem + "@" + rawIndex.toString();
    auto it = atomCache_.find(key);
    if (it != atomCache_.end()) return Expr::var(it->second);
    std::string name = preferredAtom_;
    preferredAtom_.clear();
    if (name.empty() || atoms_.count(name) || summary_.domains.count(name) ||
        defs_.count(name)) {
      name = fresh("ld");
    }
    atoms_.insert(name);
    atomCache_.emplace(key, name);
    return Expr::var(name);
  }

  std::vector<ValGuard> processGuards(const std::vector<view::AccessGuard>& in) {
    std::vector<ValGuard> out;
    out.reserve(in.size());
    for (const auto& g : in) {
      ValGuard vg;
      // Specialization substitutes before simplification, mirroring the
      // emitter's accessCode; both walks see the same substituted guard.
      const Expr adjusted = spec_.subst(g.adjusted);
      vg.adjusted = optimized_ ? simplifyIndex(adjusted, prover_) : adjusted;
      vg.size = spec_.subst(g.size);
      if (optimized_) {
        const GuardSides sides =
            proveGuardSides(vg.adjusted, vg.size, prover_);
        vg.droppedLower = sides.lowerProven;
        vg.droppedUpper = sides.upperProven;
      }
      out.push_back(std::move(vg));
    }
    return out;
  }

  /// Resolves a scalar view read into a value, applying the optimizer's
  /// address/guard pipeline when summarizing the optimized emission.
  EV loadVal(const ViewPtr& v) {
    view::ResolvedAccess a = view::resolveAccess(v, /*forStore=*/false);
    EV ev;
    switch (a.kind) {
      case view::ResolvedAccess::Kind::Iota: {
        const Expr raw = spec_.subst(a.index);
        const Expr ix = optimized_ ? simplifyIndex(raw, prover_) : raw;
        ev = EV{makeIndex(ix), ix};
        break;
      }
      case view::ResolvedAccess::Kind::Constant: {
        auto it = constVals_.find(a.code);
        ev = (it != constVals_.end()) ? it->second : EV{makeLit(a.code), {}};
        break;
      }
      case view::ResolvedAccess::Kind::Mem: {
        const Expr raw = spec_.subst(a.index);
        const Expr addr = optimized_ ? simplifyIndex(raw, prover_) : raw;
        ev.val = makeLoad(a.mem, addr);
        if (v->type && isIntScalar(v->type)) ev.ival = atomFor(a.mem, raw);
        break;
      }
    }
    if (!a.guards.empty()) {
      ev.val = makeGuard(processGuards(a.guards), ev.val);
    }
    return ev;
  }

  void recordStore(const ViewPtr& v, const EV& value) {
    view::ResolvedAccess a = view::resolveAccess(v, /*forStore=*/true);
    if (a.kind != view::ResolvedAccess::Kind::Mem) {
      throw CodegenError("store destination did not resolve to memory");
    }
    StoreSummary s;
    s.buffer = a.mem;
    const Expr raw = spec_.subst(a.index);
    s.address = optimized_ ? simplifyIndex(raw, prover_) : raw;
    s.value = value.val ? value.val : makeLit("?");
    s.context = "store " + a.mem + "[" + a.index.toString() + "]";
    summary_.stores.push_back(std::move(s));
  }

  // --- scalar walk ---------------------------------------------------------

  EV evalVal(const ExprPtr& e) {
    const Node& n = *e;
    switch (n.op) {
      case Op::Param: {
        auto it = env_.find(&n);
        if (it == env_.end()) throw CodegenError("unbound parameter: " + n.name);
        if (it->second.view) return loadVal(it->second.view);
        return it->second.scalar.value_or(EV{makeLit(n.name), {}});
      }

      case Op::Literal:
        if (n.literalKind == ir::ScalarKind::Int) {
          const Expr c(static_cast<std::int64_t>(n.literalValue));
          return EV{makeIndex(c), c};
        }
        return EV{makeLit(strformat("%.17g", n.literalValue)), {}};

      case Op::Binary: {
        EV a = evalVal(n.args[0]);
        EV b = evalVal(n.args[1]);
        if (isIntScalar(n.type) && a.ival && b.ival) {
          std::optional<Expr> r;
          switch (n.bin) {
            case ir::BinOp::Add: r = *a.ival + *b.ival; break;
            case ir::BinOp::Sub: r = *a.ival - *b.ival; break;
            case ir::BinOp::Mul: r = *a.ival * *b.ival; break;
            case ir::BinOp::Div: r = arith::div(*a.ival, *b.ival); break;
            case ir::BinOp::Min: r = arith::min(*a.ival, *b.ival); break;
            case ir::BinOp::Max: r = arith::max(*a.ival, *b.ival); break;
            default: break;
          }
          if (r) return EV{makeIndex(*r), *r};
        }
        return EV{makeApply(binOpTag(n.bin), {a.val, b.val}), {}};
      }

      case Op::Unary: {
        EV a = evalVal(n.args[0]);
        if (n.un == ir::UnOp::Neg && isIntScalar(n.type) && a.ival) {
          const Expr r = Expr(0) - *a.ival;
          return EV{makeIndex(r), r};
        }
        return EV{makeApply(n.un == ir::UnOp::Neg ? "neg" : "not", {a.val}),
                  {}};
      }

      case Op::Select: {
        EV c = evalVal(n.args[0]);
        EV t = evalVal(n.args[1]);
        EV f = evalVal(n.args[2]);
        return EV{makeApply("select", {c.val, t.val, f.val}), {}};
      }

      case Op::Cast: {
        EV a = evalVal(n.args[0]);
        std::optional<Expr> ival;
        if (isIntScalar(n.type) && isIntScalar(n.args[0]->type)) ival = a.ival;
        return EV{
            makeApply("cast#" + std::to_string(static_cast<int>(
                                    n.type->scalarKind())),
                      {a.val}),
            ival};
      }

      case Op::UserFunCall: {
        std::vector<SummaryValPtr> args;
        for (const auto& a : n.args) args.push_back(evalVal(a).val);
        return EV{makeApply("call " + n.userFun->name, std::move(args)), {}};
      }

      case Op::Get: {
        if (n.args[0]->op == Op::MakeTuple) {
          return evalVal(
              n.args[0]->args[static_cast<std::size_t>(n.tupleIndex)]);
        }
        return loadVal(
            view::tupleComponentView(viewOf(n.args[0]), n.tupleIndex));
      }

      case Op::ArrayAccess:
        return loadVal(view::accessView(viewOf(n.args[0]), indexOf(n.args[1])));

      case Op::Let: {
        collectLet(e);
        return evalVal(n.args[2]);
      }

      case Op::Reduce:
        return evalReduce(e);

      case Op::WriteTo: {
        EV value = evalVal(n.args[1]);
        recordStore(viewOf(n.args[0]), value);
        return value;
      }

      default:
        throw CodegenError("expression is not scalar-emittable: op #" +
                           std::to_string(static_cast<int>(n.op)));
    }
  }

  EV evalReduce(const ExprPtr& e) {
    const Node& n = *e;
    // Emitter name order: accumulator, then init emission, then loop var.
    const std::string acc = fresh("acc");
    EV init = evalVal(n.args[0]);
    const ExprPtr& input = n.args[1];
    const std::string iv = fresh("r");
    registerLoop(iv, spec_.subst(input->type->size()));
    bindElement(n.lambda->params[1], input, Expr::var(iv));
    env_[n.lambda->params[0].get()] = Binding{nullptr, EV{makeLit(acc), {}}};
    EV body = evalVal(n.lambda->body);
    return EV{makeApply("reduce " + acc + " " + iv, {init.val, body.val}), {}};
  }

  void collectLet(const ExprPtr& e) {
    const Node& n = *e;
    const ExprPtr& binder = n.args[0];
    const ExprPtr& value = n.args[1];
    if (value->type->isScalar()) {
      const bool pureLoad = value->op == Op::Param ||
                            value->op == Op::ArrayAccess ||
                            value->op == Op::Get;
      if (pureLoad && isIntScalar(value->type)) {
        // Loaded opaque integers adopt the binder's name, the same
        // unification the access collector performs, so summary addresses
        // read like the emitted code.
        preferredAtom_ = binder->name;
      }
      EV v = evalVal(value);
      preferredAtom_.clear();
      if (isIntScalar(value->type)) {
        const Expr self = Expr::var(binder->name);
        if (v.ival && !(*v.ival == self)) defs_.insert(binder->name);
        // The emitter binds the value to a C local and treats the name as
        // opaque in index algebra; mirror that with ival = the binder name,
        // but keep the full computation tree for value comparison.
        env_[binder.get()] = Binding{nullptr, EV{v.val, self}};
      } else {
        env_[binder.get()] = Binding{nullptr, EV{v.val, {}}};
      }
      return;
    }
    if (value->type->isArray()) {
      switch (value->op) {
        case Op::Param:
        case Op::Zip:
        case Op::Slide:
        case Op::Pad:
        case Op::Split:
        case Op::Join:
        case Op::Transpose:
        case Op::Slide3:
        case Op::Pad3:
        case Op::Iota:
        case Op::Get:
        case Op::ArrayAccess:
        case Op::ArrayCons:
          env_[binder.get()] = Binding{viewOf(value), {}};
          return;
        default:
          break;
      }
      const Expr count = value->type->flatCount();
      if (!count.isConst()) {
        throw CodegenError("private array '" + binder->name +
                           "' must have a compile-time extent, got " +
                           count.toString());
      }
      collectArray(value, view::memView(binder->name, value->type));
      env_[binder.get()] =
          Binding{view::memView(binder->name, value->type), {}};
      return;
    }
    throw CodegenError("let of tuple values is not supported");
  }

  // --- index conversion ----------------------------------------------------

  Expr indexOf(const ExprPtr& e) {
    const Node& n = *e;
    switch (n.op) {
      case Op::Literal:
        if (n.literalKind == ir::ScalarKind::Int) {
          return Expr(static_cast<std::int64_t>(n.literalValue));
        }
        break;
      case Op::Param: {
        auto it = env_.find(&n);
        if (it != env_.end() && !it->second.view && it->second.scalar &&
            it->second.scalar->ival) {
          return *it->second.scalar->ival;
        }
        break;
      }
      case Op::Binary:
        switch (n.bin) {
          case ir::BinOp::Add:
            return indexOf(n.args[0]) + indexOf(n.args[1]);
          case ir::BinOp::Sub:
            return indexOf(n.args[0]) - indexOf(n.args[1]);
          case ir::BinOp::Mul:
            return indexOf(n.args[0]) * indexOf(n.args[1]);
          case ir::BinOp::Div:
            return arith::div(indexOf(n.args[0]), indexOf(n.args[1]));
          default:
            break;
        }
        break;
      default:
        break;
    }
    EV v = evalVal(e);
    if (v.ival) return *v.ival;
    return Expr::var(fresh("ix"));
  }

  // --- views ---------------------------------------------------------------

  ViewPtr viewOf(const ExprPtr& e) {
    const Node& n = *e;
    switch (n.op) {
      case Op::Param: {
        auto it = env_.find(&n);
        if (it == env_.end() || !it->second.view) {
          throw CodegenError("parameter '" + n.name +
                             "' is not bound to a view");
        }
        return it->second.view;
      }
      case Op::Zip: {
        std::vector<ViewPtr> children;
        children.reserve(n.args.size());
        for (const auto& a : n.args) children.push_back(viewOf(a));
        return view::zipView(std::move(children), n.type);
      }
      case Op::Slide:
        return view::slideView(viewOf(n.args[0]), n.size1, n.size2);
      case Op::Pad:
        return view::padView(viewOf(n.args[0]), n.size1, n.size2, n.padMode);
      case Op::Split:
        return view::splitView(viewOf(n.args[0]), n.size1);
      case Op::Join:
        return view::joinView(viewOf(n.args[0]));
      case Op::Transpose:
        return view::transposeView(viewOf(n.args[0]));
      case Op::Slide3:
        return view::slide3View(viewOf(n.args[0]), n.size1, n.size2);
      case Op::Pad3:
        return view::pad3View(viewOf(n.args[0]), n.size1, n.padMode);
      case Op::Iota:
        return view::iotaView(n.size1);
      case Op::Get:
        return view::tupleComponentView(viewOf(n.args[0]), n.tupleIndex);
      case Op::ArrayAccess:
        return view::accessView(viewOf(n.args[0]), indexOf(n.args[1]));
      case Op::WriteTo:
        return viewOf(n.args[0]);
      case Op::ArrayCons: {
        // The emitter evaluates the element here and embeds its C code;
        // stash the value tree behind a unique token so later loads of the
        // constant view recover it.
        EV elem = evalVal(n.args[0]);
        const std::string token = fresh("cv");
        constVals_.emplace(token, elem);
        return view::constantView(token, n.type);
      }
      default:
        throw CodegenError(
            "expression cannot be used as a view; materialize it with Let "
            "(op #" + std::to_string(static_cast<int>(n.op)) + ")");
    }
  }

  void bindElement(const ExprPtr& paramNode, const ExprPtr& input,
                   const Expr& index) {
    const Node& in = *input;
    if (in.op == Op::Iota) {
      env_[paramNode.get()] = Binding{nullptr, EV{makeIndex(index), index}};
      return;
    }
    if (in.op == Op::ArrayCons) {
      env_[paramNode.get()] = Binding{nullptr, evalVal(in.args[0])};
      return;
    }
    env_[paramNode.get()] =
        Binding{view::accessView(viewOf(input), index), {}};
  }

  // --- array walk ----------------------------------------------------------

  void collectArray(const ExprPtr& e, ViewPtr dest) {
    const Node& n = *e;
    switch (n.op) {
      case Op::Map:
        collectMap(e, std::move(dest));
        return;

      case Op::Concat: {
        if (!dest) throw CodegenError("Concat requires a destination");
        Expr offset(0);
        for (const auto& child : n.args) {
          if (child->op == Op::Skip) {
            offset = offset + child->type->size();
            continue;
          }
          collectArray(child, view::offsetView(dest, offset));
          offset = offset + child->type->size();
        }
        return;
      }

      case Op::ArrayCons: {
        if (!dest) throw CodegenError("ArrayCons requires a destination");
        // Emitter order: the element is evaluated once, before the loop.
        // The straight-line check keys on the *raw* extent (the emitter
        // checks n.size1 before substituting), then the loop length is
        // specialized — same structural decision in both.
        EV elem = evalVal(n.args[0]);
        if (n.size1.isConst(1)) {
          recordStore(view::accessView(dest, Expr(0)), elem);
          return;
        }
        const std::string iv = fresh("i");
        registerLoop(iv, spec_.subst(n.size1));
        recordStore(view::accessView(dest, Expr::var(iv)), elem);
        return;
      }

      case Op::WriteTo: {
        const ViewPtr redirected = viewOf(n.args[0]);
        if (n.args[1]->type->isScalar()) {
          evalVal(e);
          return;
        }
        collectArray(n.args[1], redirected);
        return;
      }

      case Op::Skip:
        throw CodegenError("Skip may only appear inside Concat");

      case Op::Let:
        collectLet(e);
        collectArray(n.args[2], std::move(dest));
        return;

      case Op::MakeTuple: {
        for (const auto& comp : n.args) collectComponent(comp);
        return;
      }

      default:
        throw CodegenError("array expression cannot be emitted: op #" +
                           std::to_string(static_cast<int>(n.op)));
    }
  }

  void collectComponent(const ExprPtr& comp) {
    if (comp->type->isScalar()) {
      evalVal(comp);
      return;
    }
    collectArray(comp, nullptr);
  }

  void collectMap(const ExprPtr& e, ViewPtr dest) {
    const Node& n = *e;
    const ExprPtr& input = n.args[0];
    // Substituted before the straight-line check below — the emitter
    // substitutes the map extent at the same point, so both validation
    // walks make the same structural choice for spec'd single-iteration
    // maps.
    const Expr len = spec_.subst(input->type->size());
    const ExprPtr& bodyExpr = n.lambda->body;

    const bool collapsed =
        dest != nullptr && bodyExpr->type != nullptr &&
        bodyExpr->type->isArray() && ir::typeEquals(dest->type, bodyExpr->type);

    if (n.mapKind == ir::MapKind::Seq && len.isConst(1)) {
      collectMapIteration(n, dest, collapsed, Expr(0));
      return;
    }

    std::string iv;
    if (n.mapKind == ir::MapKind::Glb) {
      iv = fresh("g");
    } else if (n.mapKind == ir::MapKind::Seq) {
      iv = fresh("i");
    } else {
      throw CodegenError("MapWrg/MapLcl require local-memory support, which "
                         "the barrier-free generator does not emit");
    }
    // The chunk schedule changes loop geometry, not the per-index work; the
    // emitter registers iv in [0, len-1] either way, and so does the summary.
    registerLoop(iv, len);
    collectMapIteration(n, dest, collapsed, Expr::var(iv));
  }

  void collectMapIteration(const Node& n, const ViewPtr& dest, bool collapsed,
                           const Expr& index) {
    const ExprPtr& input = n.args[0];
    const ExprPtr& bodyExpr = n.lambda->body;
    bindElement(n.lambda->params[0], input, index);

    if (bodyExpr->type->isScalar()) {
      EV code = evalVal(bodyExpr);
      if (dest) {
        recordStore(view::accessView(dest, index), code);
      }
    } else if (bodyExpr->type->isTuple()) {
      if (bodyExpr->op == Op::MakeTuple) {
        for (const auto& comp : bodyExpr->args) collectComponent(comp);
      } else if (bodyExpr->op == Op::Let) {
        collectArray(n.lambda->body, nullptr);
      } else {
        throw CodegenError("tuple-typed map body must be a Tuple or Let");
      }
    } else {
      ViewPtr elementDest;
      if (collapsed) {
        elementDest = dest;
      } else if (dest) {
        elementDest = view::accessView(dest, index);
      }
      collectArray(bodyExpr, elementDest);
    }
  }

  const memory::KernelDef& def_;
  const bool optimized_;
  const memory::Specialization spec_;
  KernelSummary summary_;
  Prover prover_;
  std::map<const Node*, Binding> env_;
  std::map<std::string, std::string> atomCache_;  // buffer@index -> atom name
  std::map<std::string, EV> constVals_;           // ArrayCons token -> value
  std::set<std::string> atoms_;
  std::set<std::string> defs_;
  std::set<std::string> rawSizeVars_;
  std::string preferredAtom_;
  int counter_ = 0;
};

// --- equality proving -------------------------------------------------------

Expr replaceAll(const Expr& e, const Expr& from, const Expr& to) {
  if (e == from) return to;
  if (e.kind() == Kind::Const || e.kind() == Kind::Var) return e;
  std::vector<Expr> ops;
  ops.reserve(e.operands().size());
  for (const auto& op : e.operands()) ops.push_back(replaceAll(op, from, to));
  switch (e.kind()) {
    case Kind::Add: return arith::add(std::move(ops));
    case Kind::Mul: return arith::mul(std::move(ops));
    case Kind::Div: return arith::div(ops[0], ops[1]);
    case Kind::Mod: return arith::mod(ops[0], ops[1]);
    case Kind::Min: return arith::min(ops[0], ops[1]);
    case Kind::Max: return arith::max(ops[0], ops[1]);
    default: return e;
  }
}

/// x % y == x - y*(x/y) exactly (C semantics, identical trap domain), so a
/// difference containing Mod can always be restated with Div only.
Expr eliminateMod(const Expr& e) {
  if (e.kind() == Kind::Const || e.kind() == Kind::Var) return e;
  std::vector<Expr> ops;
  ops.reserve(e.operands().size());
  for (const auto& op : e.operands()) ops.push_back(eliminateMod(op));
  switch (e.kind()) {
    case Kind::Add: return arith::add(std::move(ops));
    case Kind::Mul: return arith::mul(std::move(ops));
    case Kind::Div: return arith::div(ops[0], ops[1]);
    case Kind::Mod: return ops[0] - ops[1] * arith::div(ops[0], ops[1]);
    case Kind::Min: return arith::min(ops[0], ops[1]);
    case Kind::Max: return arith::max(ops[0], ops[1]);
    default: return e;
  }
}

std::optional<Expr> findInnermostDiv(const Expr& e) {
  if (e.kind() == Kind::Const || e.kind() == Kind::Var) return std::nullopt;
  for (const auto& op : e.operands()) {
    if (auto f = findInnermostDiv(op)) return f;
  }
  if (e.kind() == Kind::Div) return e;
  return std::nullopt;
}

}  // namespace

bool provenEqual(const Prover& p, const Expr& a, const Expr& b) {
  if (a == b) return true;
  Expr d = a - b;
  if (d.isConst()) return d.constValue() == 0;
  d = eliminateMod(d);
  // Discharge Div nodes innermost-first: replace x/y by its exact polynomial
  // quotient when the division is provably exact truncation (remainder in
  // [0, y), numerator nonnegative, divisor positive) — this independently
  // re-derives the rewrite simplifyIndex performed — otherwise by an opaque
  // fresh variable so structurally-equal residues still cancel.
  int opaque = 0;
  for (int round = 0; round < 16; ++round) {
    auto t = findInnermostDiv(d);
    if (!t) break;
    const Expr& x = t->operands()[0];
    const Expr& y = t->operands()[1];
    Expr replacement = Expr::var("eq$" + std::to_string(opaque));
    bool exact = false;
    if (auto qr = polyDivide(x, y)) {
      const Expr& q = qr->first;
      const Expr& r = qr->second;
      if (p.proveGE0(r).proof == Proof::Yes &&
          p.proveGE0(y - Expr(1) - r).proof == Proof::Yes &&
          p.proveGE0(x).proof == Proof::Yes &&
          p.proveGE0(y - Expr(1)).proof == Proof::Yes) {
        replacement = q;
        exact = true;
      }
    }
    if (!exact) ++opaque;
    d = replaceAll(d, *t, replacement);
    if (d.isConst()) return d.constValue() == 0;
  }
  return p.proveGE0(d).proof == Proof::Yes &&
         p.proveGE0(Expr(0) - d).proof == Proof::Yes;
}

std::string describeVal(const SummaryValPtr& v) {
  if (!v) return "?";
  switch (v->kind) {
    case SummaryVal::Kind::Lit:
      return v->text;
    case SummaryVal::Kind::Index:
      return v->index.toString();
    case SummaryVal::Kind::Load:
      return v->buffer + "[" + v->index.toString() + "]";
    case SummaryVal::Kind::Guard: {
      std::string s = "guard(";
      for (const auto& g : v->guards) {
        s += "0<=" + g.adjusted.toString() + "<" + g.size.toString() + "; ";
      }
      return s + describeVal(v->args.empty() ? nullptr : v->args[0]) + ")";
    }
    case SummaryVal::Kind::Apply: {
      std::string s = v->text + "(";
      for (std::size_t i = 0; i < v->args.size(); ++i) {
        if (i) s += ", ";
        s += describeVal(v->args[i]);
      }
      return s + ")";
    }
  }
  return "?";
}

namespace {

const char* kindName(SummaryVal::Kind k) {
  switch (k) {
    case SummaryVal::Kind::Lit: return "literal";
    case SummaryVal::Kind::Index: return "index";
    case SummaryVal::Kind::Load: return "load";
    case SummaryVal::Kind::Guard: return "guard";
    case SummaryVal::Kind::Apply: return "apply";
  }
  return "?";
}

/// Compares one pad guard. A side the optimizer dropped (and the reference
/// kept) must be provable from the reference's as-written adjusted
/// expression; sides kept by both must use provably equal expressions.
std::optional<std::string> diffGuard(const Prover& p, const ValGuard& rg,
                                     const ValGuard& og) {
  if (!(rg.size == og.size)) {
    return "guard extent changed: " + rg.size.toString() + " vs " +
           og.size.toString();
  }
  const bool refL = !rg.droppedLower, refU = !rg.droppedUpper;
  const bool optL = !og.droppedLower, optU = !og.droppedUpper;
  if (refL != optL &&
      !(p.proveGE0(rg.adjusted).proof == Proof::Yes)) {
    return "guard lower bound 0 <= " + rg.adjusted.toString() +
           " eliminated but not provable";
  }
  if (refU != optU &&
      !(p.proveGE0(rg.size - Expr(1) - rg.adjusted).proof == Proof::Yes)) {
    return "guard upper bound " + rg.adjusted.toString() + " < " +
           rg.size.toString() + " eliminated but not provable";
  }
  if (((refL && optL) || (refU && optU)) &&
      !provenEqual(p, rg.adjusted, og.adjusted)) {
    return "guard expression changed: " + rg.adjusted.toString() + " vs " +
           og.adjusted.toString();
  }
  return std::nullopt;
}

std::optional<std::string> diffVal(const Prover& p, const SummaryValPtr& ref,
                                   const SummaryValPtr& opt) {
  if (!ref || !opt) {
    return (ref == opt) ? std::nullopt
                        : std::optional<std::string>("value missing");
  }
  if (ref->kind != opt->kind) {
    return std::string("value shape changed: ") + kindName(ref->kind) +
           " became " + kindName(opt->kind) + " (" + describeVal(ref) +
           " vs " + describeVal(opt) + ")";
  }
  switch (ref->kind) {
    case SummaryVal::Kind::Lit:
      if (ref->text != opt->text) {
        return "literal changed: " + ref->text + " vs " + opt->text;
      }
      return std::nullopt;
    case SummaryVal::Kind::Index:
      if (!provenEqual(p, ref->index, opt->index)) {
        return "integer value not provably equal: " + ref->index.toString() +
               " vs " + opt->index.toString();
      }
      return std::nullopt;
    case SummaryVal::Kind::Load:
      if (ref->buffer != opt->buffer) {
        return "load buffer changed: " + ref->buffer + " vs " + opt->buffer;
      }
      if (!provenEqual(p, ref->index, opt->index)) {
        return "load address not provably equal: " + ref->index.toString() +
               " vs " + opt->index.toString() + " (buffer " + ref->buffer +
               ")";
      }
      return std::nullopt;
    case SummaryVal::Kind::Guard: {
      if (ref->guards.size() != opt->guards.size()) {
        return "guard count changed: " +
               std::to_string(ref->guards.size()) + " vs " +
               std::to_string(opt->guards.size());
      }
      for (std::size_t i = 0; i < ref->guards.size(); ++i) {
        if (auto m = diffGuard(p, ref->guards[i], opt->guards[i])) return m;
      }
      break;  // fall through to args
    }
    case SummaryVal::Kind::Apply:
      if (ref->text != opt->text) {
        return "operation changed: " + ref->text + " vs " + opt->text;
      }
      break;  // fall through to args
  }
  if (ref->args.size() != opt->args.size()) {
    return "operand count changed for '" + ref->text + "': " +
           std::to_string(ref->args.size()) + " vs " +
           std::to_string(opt->args.size());
  }
  for (std::size_t i = 0; i < ref->args.size(); ++i) {
    if (auto m = diffVal(p, ref->args[i], opt->args[i])) return m;
  }
  return std::nullopt;
}

}  // namespace

KernelSummary summarizeKernel(const memory::KernelDef& def, bool optimized) {
  Summarizer s(def, optimized);
  return s.run();
}

KernelSummary summarizeKernel(const memory::KernelDef& def, bool optimized,
                              const memory::Specialization& spec) {
  Summarizer s(def, optimized, spec);
  return s.run();
}

Report compareSummaries(const KernelSummary& ref, const KernelSummary& opt) {
  Report report;
  report.subject = ref.kernelName;

  auto error = [&](std::string message, const std::string& origin,
                   const std::string& index, const std::string& node) {
    Diagnostic d;
    d.severity = Severity::Error;
    d.pass = PassId::Equiv;
    d.kernel = ref.kernelName;
    d.node = node;
    d.message = std::move(message);
    d.indexExpr = index;
    d.origin = origin;
    report.diagnostics.push_back(std::move(d));
  };

  // All proofs run under the reference walk's facts: loop domains (with the
  // nonempty-range fact the emitter also assumes) and size nonnegativity.
  Prover p;
  for (const auto& [v, d] : ref.domains) {
    p.setDomain(v, d);
    p.assumeNonNegative(d.hi - d.lo);
  }
  for (const auto& v : ref.sizeVars) p.assumeAtLeast(v, 0);

  if (ref.stores.size() != opt.stores.size()) {
    error("store count changed: " + std::to_string(ref.stores.size()) +
              " stores before optimization, " +
              std::to_string(opt.stores.size()) + " after",
          "", "", "");
    return report;
  }

  for (std::size_t i = 0; i < ref.stores.size(); ++i) {
    const StoreSummary& rs = ref.stores[i];
    const StoreSummary& os = opt.stores[i];
    if (rs.buffer != os.buffer) {
      error("store buffer changed: " + rs.buffer + " became " + os.buffer,
            rs.context, os.address.toString(), rs.buffer);
      continue;
    }
    if (!provenEqual(p, rs.address, os.address)) {
      error("store address not provably equal: " + rs.address.toString() +
                " vs " + os.address.toString(),
            rs.context, os.address.toString(), rs.buffer);
      continue;
    }
    if (auto m = diffVal(p, rs.value, os.value)) {
      error("stored value diverges: " + *m, rs.context,
            os.address.toString(), rs.buffer);
    }
  }
  return report;
}

Report validateTranslation(const memory::KernelDef& def) {
  return validateTranslation(def, memory::Specialization{});
}

Report validateTranslation(const memory::KernelDef& def,
                           const memory::Specialization& spec) {
  const KernelSummary ref = summarizeKernel(def, /*optimized=*/false, spec);
  const KernelSummary opt = summarizeKernel(def, /*optimized=*/true, spec);
  return compareSummaries(ref, opt);
}

void verifyTranslation(const memory::KernelDef& def) {
  verifyTranslation(def, memory::Specialization{});
}

void verifyTranslation(const memory::KernelDef& def,
                       const memory::Specialization& spec) {
  if (!verifyEnabled()) return;
  const Report report = validateTranslation(def, spec);
  if (!report.hasErrors()) return;
  std::string msg =
      "kernel '" + def.name + "' failed translation validation:\n";
  for (const auto& d : report.diagnostics) {
    if (d.severity != Severity::Error) continue;
    msg += "  " + d.message;
    if (!d.origin.empty()) msg += " [" + d.origin + "]";
    msg += "\n";
  }
  msg += "(set LIFTA_SKIP_VERIFY=1 to bypass)";
  throw AnalysisError(msg);
}

}  // namespace lifta::analysis
