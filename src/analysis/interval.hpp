// Interval/range engine and symbolic bounds prover for arith::Expr.
//
// The prover answers "is e >= 0 for every assignment consistent with the
// registered variable domains and assumptions?" with a three-valued Proof.
// It combines:
//   * a sound numeric interval evaluation (Add/Mul/Div/Mod/Min/Max with
//     saturating endpoints) for fully-concrete domains,
//   * exact case splitting on Min/Max (min(a,b) is one of a,b),
//   * bounded fresh-variable elimination for Div/Mod,
//   * vertex substitution for expressions multilinear in domain variables
//     (each iteration variable in [lo, hi] is replaced by its endpoints),
//   * a residual check that shifts variables by their known lower bounds and
//     verifies every monomial of the canonical polynomial is nonnegative.
//
// "No" verdicts (a proven violation, used for error-severity diagnostics)
// are only produced when the reasoning chain was exact — no interval
// overapproximation, no Div/Mod elimination — so a "No" always corresponds
// to an attainable witness assignment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "arith/expr.hpp"

namespace lifta::analysis {

enum class Proof { Yes, No, Unknown };

/// Inclusive range of an integer variable. Endpoints are symbolic (they may
/// mention size parameters). `exact` means both endpoints are attainable.
struct Domain {
  arith::Expr lo;
  arith::Expr hi;
  bool exact = true;
};

class Prover {
 public:
  /// Registers the domain of an iteration-style variable.
  void setDomain(const std::string& var, Domain d);
  const Domain* lookupDomain(const std::string& var) const;

  /// Registers a definition (let-bound scalar): `var` expands to `value`
  /// before proving. Definitions must be acyclic.
  void define(const std::string& var, arith::Expr value);

  /// Assumes `var >= bound` (used for size parameters, which are >= 0 by
  /// construction, and for nonempty-range facts).
  void assumeAtLeast(const std::string& var, std::int64_t bound);

  /// Assumes `fact >= 0` for every assignment (used for nonempty-range
  /// facts whose shape the var-level maps cannot hold, e.g. cells - segW).
  void assumeNonNegative(arith::Expr fact);

  /// Relational difference bound: assumes lo <= x - y <= hi. During proving
  /// `x` is rewritten to `y + d` with a proof-scoped variable d in [lo, hi],
  /// so goals that couple the two variables (e.g. disjointness of
  /// `i*stride + c1` and `i'*stride + c2`) become single-variable facts the
  /// non-relational domains can discharge. The bound is registered inexact:
  /// it never licenses an exact "No" witness. Bounds chain through `y` only
  /// if `y` itself has no difference bound (one substitution round).
  void assumeDifference(const std::string& x, const std::string& y,
                        arith::Expr lo, arith::Expr hi);

  /// Substitutes definitions to a fixpoint.
  arith::Expr resolve(arith::Expr e) const;

  struct Result {
    Proof proof = Proof::Unknown;
    /// True when a No verdict came from exact reasoning (witness exists).
    bool exact = true;
  };

  /// e >= 0 for all consistent assignments? (resolves definitions first)
  Result proveGE0(const arith::Expr& e) const;
  /// e >= 1?
  Result provePositive(const arith::Expr& e) const;
  /// e != 0 for all consistent assignments?
  Proof proveNonZero(const arith::Expr& e) const;

  /// Sound numeric interval (saturating int64 endpoints; kIntMin/kIntMax act
  /// as -inf/+inf). Returns nullopt when no finite reasoning applies at all
  /// (e.g. possible division by zero).
  struct NumInterval {
    std::int64_t lo;
    std::int64_t hi;
    bool exact = true;  // endpoints attainable
  };
  std::optional<NumInterval> numericInterval(const arith::Expr& e) const;

  static constexpr std::int64_t kIntMin = INT64_MIN / 4;
  static constexpr std::int64_t kIntMax = INT64_MAX / 4;

 private:
  friend struct ProveCtx;
  struct DiffBound {
    std::string x;
    std::string y;
    arith::Expr lo;
    arith::Expr hi;
  };
  std::map<std::string, Domain> domains_;
  std::map<std::string, arith::Expr> defs_;
  std::map<std::string, std::int64_t> atLeast_;
  std::vector<arith::Expr> facts_;       // each assumed >= 0
  std::vector<DiffBound> diffs_;         // each: lo <= x - y <= hi
};

// --- polynomial helpers shared with the race detector -----------------------

/// True when e contains only Const/Var/Add/Mul nodes.
bool isPolynomial(const arith::Expr& e);

bool containsVar(const arith::Expr& e, const std::string& var);

/// Decomposes e == coeff*var + rest with coeff and rest free of `var`.
/// Requires e polynomial with degree(var) <= 1; nullopt otherwise.
std::optional<std::pair<arith::Expr, arith::Expr>> affineIn(
    const arith::Expr& e, const std::string& var);

/// True when every additive term of polynomial `e` carries `factor` (a Var,
/// or a Const that divides every coefficient).
bool divisibleBy(const arith::Expr& e, const arith::Expr& factor);

/// Polynomial division by a single monomial: returns (quotient, remainder)
/// with num == quotient*den + remainder exactly. Monomials whose variables
/// are not divisible by `den` land wholly in the remainder; when the
/// variables divide, the coefficient is split Euclideanly so the remainder
/// coefficient stays in [0, |den coeff|) — e.g. (2i+3)/2 is (i+1, 1), not
/// (i, 3). Nullopt when either input is non-polynomial, `den` is zero, or
/// `den` has more than one monomial.
std::optional<std::pair<arith::Expr, arith::Expr>> polyDivide(
    const arith::Expr& num, const arith::Expr& den);

}  // namespace lifta::analysis
