#include "ir/printer.hpp"

#include "common/string_util.hpp"

namespace lifta::ir {

namespace {

const char* binOpName(BinOp b) {
  switch (b) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
    case BinOp::Min: return "min";
    case BinOp::Max: return "max";
  }
  return "?";
}

const char* mapName(MapKind k) {
  switch (k) {
    case MapKind::Seq: return "MapSeq";
    case MapKind::Glb: return "MapGlb";
    case MapKind::Wrg: return "MapWrg";
    case MapKind::Lcl: return "MapLcl";
  }
  return "Map";
}

std::string render(const ExprPtr& e) {
  const Node& n = *e;
  switch (n.op) {
    case Op::Param:
      return n.name;
    case Op::Literal:
      if (n.literalKind == ScalarKind::Int) {
        return std::to_string(static_cast<std::int64_t>(n.literalValue));
      }
      return strformat("%g", n.literalValue);
    case Op::Binary: {
      const std::string a = render(n.args[0]);
      const std::string b = render(n.args[1]);
      if (n.bin == BinOp::Min || n.bin == BinOp::Max) {
        return std::string(binOpName(n.bin)) + "(" + a + ", " + b + ")";
      }
      return "(" + a + " " + binOpName(n.bin) + " " + b + ")";
    }
    case Op::Unary:
      return (n.un == UnOp::Neg ? "-" : "!") + render(n.args[0]);
    case Op::Select:
      return "(" + render(n.args[0]) + " ? " + render(n.args[1]) + " : " +
             render(n.args[2]) + ")";
    case Op::Cast:
      return "Cast[" + n.type->toString() + "](" + render(n.args[0]) + ")";
    case Op::UserFunCall: {
      std::vector<std::string> parts;
      for (const auto& a : n.args) parts.push_back(render(a));
      return n.userFun->name + "(" + join(parts, ", ") + ")";
    }
    case Op::Let:
      return "val " + n.args[0]->name + " = " + render(n.args[1]) + " in " +
             render(n.args[2]);
    case Op::MakeTuple: {
      std::vector<std::string> parts;
      for (const auto& a : n.args) parts.push_back(render(a));
      return "Tuple(" + join(parts, ", ") + ")";
    }
    case Op::Get:
      return "Get(" + render(n.args[0]) + ", " + std::to_string(n.tupleIndex) +
             ")";
    case Op::Zip: {
      std::vector<std::string> parts;
      for (const auto& a : n.args) parts.push_back(render(a));
      return "Zip(" + join(parts, ", ") + ")";
    }
    case Op::Map: {
      std::vector<std::string> ps;
      for (const auto& p : n.lambda->params) ps.push_back(p->name);
      return std::string(mapName(n.mapKind)) + "(fun(" + join(ps, ", ") +
             " => " + render(n.lambda->body) + ")) << " + render(n.args[0]);
    }
    case Op::Reduce: {
      std::vector<std::string> ps;
      for (const auto& p : n.lambda->params) ps.push_back(p->name);
      return "ReduceSeq(fun(" + join(ps, ", ") + " => " +
             render(n.lambda->body) + "), " + render(n.args[0]) + ") << " +
             render(n.args[1]);
    }
    case Op::Slide:
      return "Slide(" + n.size1.toString() + ", " + n.size2.toString() +
             ") << " + render(n.args[0]);
    case Op::Pad:
      return "Pad(" + n.size1.toString() + ", " + n.size2.toString() + ", " +
             (n.padMode == PadMode::Zero ? "0" : "clamp") + ") << " +
             render(n.args[0]);
    case Op::Split:
      return "Split(" + n.size1.toString() + ") << " + render(n.args[0]);
    case Op::Join:
      return "Join() << " + render(n.args[0]);
    case Op::Iota:
      return "Iota(" + n.size1.toString() + ")";
    case Op::Transpose:
      return "Transpose() << " + render(n.args[0]);
    case Op::Slide3:
      return "Slide3(" + n.size1.toString() + ", " + n.size2.toString() +
             ") << " + render(n.args[0]);
    case Op::Pad3:
      return "Pad3(" + n.size1.toString() + ", " +
             (n.padMode == PadMode::Zero ? "0" : "clamp") + ") << " +
             render(n.args[0]);
    case Op::ArrayAccess:
      return "ArrayAccess(" + render(n.args[1]) + ") << " + render(n.args[0]);
    case Op::WriteTo:
      return "WriteTo(" + render(n.args[0]) + ", " + render(n.args[1]) + ")";
    case Op::Concat: {
      std::vector<std::string> parts;
      for (const auto& a : n.args) parts.push_back(render(a));
      return "Concat(" + join(parts, ", ") + ")";
    }
    case Op::Skip:
      return "Skip<" + (n.elemType ? n.elemType->toString() : "?") + ">(" +
             render(n.args[0]) + ")";
    case Op::ArrayCons:
      return "ArrayCons(" + render(n.args[0]) + ", " + n.size1.toString() + ")";
  }
  return "<?>";
}

}  // namespace

std::string printCompact(const ExprPtr& expr) { return render(expr); }

std::string print(const ExprPtr& expr) {
  // The compact renderer already produces readable output for the program
  // sizes in this repo; pretty printing just adds a trailing newline.
  return render(expr) + "\n";
}

}  // namespace lifta::ir
