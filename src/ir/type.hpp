// LIFT IR types.
//
// The type language follows the LIFT papers: scalar types, fixed-length
// arrays whose lengths are *symbolic* arithmetic expressions (src/arith), and
// tuples. Array lengths being symbolic is what lets one IR program serve all
// room sizes: the kernel is generated once with N as a variable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arith/expr.hpp"

namespace lifta::ir {

enum class ScalarKind { Float, Double, Int, Bool };

/// Name of the scalar type in generated C code. `Float`/`Double` both print
/// as the kernel-local `real` typedef so one IR program serves both
/// precisions; `realName` controls that spelling.
std::string cTypeName(ScalarKind k, const std::string& realName = "real");

class Type;
using TypePtr = std::shared_ptr<const Type>;

enum class TypeKind { Scalar, Array, Tuple };

class Type {
public:
  static TypePtr scalar(ScalarKind k);
  static TypePtr array(TypePtr elem, arith::Expr size);
  static TypePtr tuple(std::vector<TypePtr> elems);

  // Convenience singletons.
  static TypePtr float_();
  static TypePtr double_();
  static TypePtr int_();
  static TypePtr bool_();

  TypeKind kind() const { return kind_; }
  bool isScalar() const { return kind_ == TypeKind::Scalar; }
  bool isArray() const { return kind_ == TypeKind::Array; }
  bool isTuple() const { return kind_ == TypeKind::Tuple; }

  ScalarKind scalarKind() const;            // requires isScalar()
  const TypePtr& elem() const;              // requires isArray()
  const arith::Expr& size() const;          // requires isArray()
  const std::vector<TypePtr>& elems() const;  // requires isTuple()

  /// Structural equality; array sizes compare via arith::Expr equality.
  bool equals(const TypePtr& other) const;

  std::string toString() const;

  /// For an array (possibly nested), the total element count as a symbolic
  /// expression; for scalars, 1.
  arith::Expr flatCount() const;

  /// The ultimate scalar element of a (possibly nested) array type.
  TypePtr scalarElem() const;

private:
  Type() = default;
  TypeKind kind_ = TypeKind::Scalar;
  ScalarKind scalar_ = ScalarKind::Float;
  TypePtr elem_;
  arith::Expr size_;
  std::vector<TypePtr> elems_;
};

/// True when both are scalars of the same kind, or structurally equal.
bool typeEquals(const TypePtr& a, const TypePtr& b);

}  // namespace lifta::ir
