// Bottom-up type inference / checking for the LIFT IR.
//
// typecheck() fills in `Node::type` for every node reachable from the given
// expression and throws lifta::TypeError on any inconsistency. Lambda
// parameters receive their types from the pattern that applies the lambda
// (e.g. a Map's lambda parameter gets the input array's element type), as in
// LIFT, so programs are written without redundant annotations.
#pragma once

#include "ir/expr.hpp"

namespace lifta::ir {

/// Type-checks the expression; returns its type. Idempotent.
TypePtr typecheck(const ExprPtr& expr);

/// Attempts to convert a *scalar Int* IR expression into a symbolic
/// arith::Expr (used for the type-level lengths of Skip). Supported:
/// literals, Int params / let-bound names, and +,-,*,/ combinations thereof.
/// Throws TypeError when the expression is not convertible.
arith::Expr toArith(const ExprPtr& expr);

}  // namespace lifta::ir
