#include "ir/typecheck.hpp"

#include "common/error.hpp"

namespace lifta::ir {

namespace {

[[noreturn]] void fail(const std::string& msg) { throw TypeError(msg); }

void expectScalar(const TypePtr& t, const char* where) {
  if (!t->isScalar()) fail(std::string(where) + ": expected scalar, got " + t->toString());
}

void expectArray(const TypePtr& t, const char* where) {
  if (!t->isArray()) fail(std::string(where) + ": expected array, got " + t->toString());
}

TypePtr checkBinary(const Node& n, const TypePtr& a, const TypePtr& b) {
  expectScalar(a, "binary lhs");
  expectScalar(b, "binary rhs");
  switch (n.bin) {
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Mul:
    case BinOp::Div:
    case BinOp::Min:
    case BinOp::Max:
      if (a->scalarKind() != b->scalarKind()) {
        fail("arithmetic on mismatched scalar kinds: " + a->toString() + " vs " +
             b->toString());
      }
      return a;
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
      if (a->scalarKind() != b->scalarKind()) {
        fail("comparison on mismatched scalar kinds");
      }
      return Type::bool_();
    case BinOp::And:
    case BinOp::Or:
      if (a->scalarKind() != ScalarKind::Bool ||
          b->scalarKind() != ScalarKind::Bool) {
        fail("logical op requires Bool operands");
      }
      return Type::bool_();
  }
  fail("unknown binary op");
}

}  // namespace

arith::Expr toArith(const ExprPtr& expr) {
  switch (expr->op) {
    case Op::Literal:
      if (expr->literalKind != ScalarKind::Int) {
        fail("toArith: non-integer literal");
      }
      return arith::Expr(static_cast<std::int64_t>(expr->literalValue));
    case Op::Param:
      return arith::Expr::var(expr->name);
    case Op::Binary: {
      const arith::Expr a = toArith(expr->args[0]);
      const arith::Expr b = toArith(expr->args[1]);
      switch (expr->bin) {
        case BinOp::Add:
          return a + b;
        case BinOp::Sub:
          return a - b;
        case BinOp::Mul:
          return a * b;
        case BinOp::Div:
          return a / b;
        default:
          fail("toArith: unsupported binary operator");
      }
    }
    default:
      fail("toArith: expression not convertible to symbolic arithmetic");
  }
}

TypePtr typecheck(const ExprPtr& expr) {
  Node& n = *expr;
  switch (n.op) {
    case Op::Param:
      if (n.type == nullptr) fail("parameter '" + n.name + "' has no type");
      return n.type;

    case Op::Literal:
    case Op::Iota:
      return n.type;

    case Op::Binary: {
      const TypePtr a = typecheck(n.args[0]);
      const TypePtr b = typecheck(n.args[1]);
      n.type = checkBinary(n, a, b);
      return n.type;
    }

    case Op::Unary: {
      const TypePtr a = typecheck(n.args[0]);
      expectScalar(a, "unary");
      if (n.un == UnOp::Not && a->scalarKind() != ScalarKind::Bool) {
        fail("logical not requires Bool");
      }
      n.type = a;
      return n.type;
    }

    case Op::Select: {
      const TypePtr c = typecheck(n.args[0]);
      const TypePtr t = typecheck(n.args[1]);
      const TypePtr f = typecheck(n.args[2]);
      if (!c->isScalar() || c->scalarKind() != ScalarKind::Bool) {
        fail("select condition must be Bool");
      }
      if (!typeEquals(t, f)) {
        fail("select branches differ: " + t->toString() + " vs " + f->toString());
      }
      n.type = t;
      return n.type;
    }

    case Op::Cast: {
      const TypePtr a = typecheck(n.args[0]);
      expectScalar(a, "cast operand");
      expectScalar(n.type, "cast target");
      return n.type;
    }

    case Op::UserFunCall: {
      const UserFun& fn = *n.userFun;
      if (n.args.size() != fn.paramTypes.size()) {
        fail("user function '" + fn.name + "' arity mismatch");
      }
      for (std::size_t i = 0; i < n.args.size(); ++i) {
        const TypePtr at = typecheck(n.args[i]);
        if (!typeEquals(at, fn.paramTypes[i])) {
          fail("user function '" + fn.name + "' argument " + std::to_string(i) +
               ": expected " + fn.paramTypes[i]->toString() + ", got " +
               at->toString());
        }
      }
      n.type = fn.returnType;
      return n.type;
    }

    case Op::Let: {
      const TypePtr vt = typecheck(n.args[1]);
      Node& binder = *n.args[0];
      if (binder.type == nullptr) {
        binder.type = vt;
      } else if (!typeEquals(binder.type, vt)) {
        fail("let binder type mismatch for '" + binder.name + "'");
      }
      n.type = typecheck(n.args[2]);
      return n.type;
    }

    case Op::MakeTuple: {
      std::vector<TypePtr> elems;
      elems.reserve(n.args.size());
      for (const auto& a : n.args) elems.push_back(typecheck(a));
      n.type = Type::tuple(std::move(elems));
      return n.type;
    }

    case Op::Get: {
      const TypePtr t = typecheck(n.args[0]);
      if (!t->isTuple()) fail("get on non-tuple: " + t->toString());
      if (n.tupleIndex < 0 ||
          static_cast<std::size_t>(n.tupleIndex) >= t->elems().size()) {
        fail("get index out of range");
      }
      n.type = t->elems()[static_cast<std::size_t>(n.tupleIndex)];
      return n.type;
    }

    case Op::Zip: {
      std::vector<TypePtr> elems;
      arith::Expr size;
      for (std::size_t i = 0; i < n.args.size(); ++i) {
        const TypePtr t = typecheck(n.args[i]);
        expectArray(t, "zip argument");
        if (i == 0) {
          size = t->size();
        } else if (!(t->size() == size)) {
          fail("zip arguments have different lengths: " + size.toString() +
               " vs " + t->size().toString());
        }
        elems.push_back(t->elem());
      }
      n.type = Type::array(Type::tuple(std::move(elems)), size);
      return n.type;
    }

    case Op::Map: {
      const TypePtr in = typecheck(n.args[0]);
      expectArray(in, "map input");
      Node& p = *n.lambda->params[0];
      if (p.type == nullptr) {
        p.type = in->elem();
      } else if (!typeEquals(p.type, in->elem())) {
        fail("map lambda parameter type mismatch");
      }
      const TypePtr out = typecheck(n.lambda->body);
      n.type = Type::array(out, in->size());
      return n.type;
    }

    case Op::Reduce: {
      const TypePtr initT = typecheck(n.args[0]);
      const TypePtr in = typecheck(n.args[1]);
      expectArray(in, "reduce input");
      Node& acc = *n.lambda->params[0];
      Node& elem = *n.lambda->params[1];
      if (acc.type == nullptr) acc.type = initT;
      if (elem.type == nullptr) elem.type = in->elem();
      const TypePtr bodyT = typecheck(n.lambda->body);
      if (!typeEquals(bodyT, initT)) {
        fail("reduce lambda must return the accumulator type");
      }
      n.type = initT;
      return n.type;
    }

    case Op::Slide: {
      const TypePtr in = typecheck(n.args[0]);
      expectArray(in, "slide input");
      // count = (n - size) / step + 1
      const arith::Expr count =
          (in->size() - n.size1) / n.size2 + arith::Expr(1);
      n.type = Type::array(Type::array(in->elem(), n.size1), count);
      return n.type;
    }

    case Op::Pad: {
      const TypePtr in = typecheck(n.args[0]);
      expectArray(in, "pad input");
      n.type = Type::array(in->elem(), in->size() + n.size1 + n.size2);
      return n.type;
    }

    case Op::Split: {
      const TypePtr in = typecheck(n.args[0]);
      expectArray(in, "split input");
      n.type = Type::array(Type::array(in->elem(), n.size1),
                           in->size() / n.size1);
      return n.type;
    }

    case Op::Join: {
      const TypePtr in = typecheck(n.args[0]);
      expectArray(in, "join input");
      expectArray(in->elem(), "join input element");
      n.type =
          Type::array(in->elem()->elem(), in->size() * in->elem()->size());
      return n.type;
    }

    case Op::Transpose: {
      const TypePtr in = typecheck(n.args[0]);
      expectArray(in, "transpose input");
      expectArray(in->elem(), "transpose input element");
      n.type = Type::array(Type::array(in->elem()->elem(), in->size()),
                           in->elem()->size());
      return n.type;
    }

    case Op::Slide3: {
      const TypePtr in = typecheck(n.args[0]);
      expectArray(in, "slide3 input (z)");
      expectArray(in->elem(), "slide3 input (y)");
      expectArray(in->elem()->elem(), "slide3 input (x)");
      const TypePtr t = in->elem()->elem()->elem();
      const auto count = [&](const arith::Expr& dim) {
        return (dim - n.size1) / n.size2 + arith::Expr(1);
      };
      const TypePtr window = Type::array(
          Type::array(Type::array(t, n.size1), n.size1), n.size1);
      n.type = Type::array(
          Type::array(Type::array(window, count(in->elem()->elem()->size())),
                      count(in->elem()->size())),
          count(in->size()));
      return n.type;
    }

    case Op::Pad3: {
      const TypePtr in = typecheck(n.args[0]);
      expectArray(in, "pad3 input (z)");
      expectArray(in->elem(), "pad3 input (y)");
      expectArray(in->elem()->elem(), "pad3 input (x)");
      const arith::Expr two = n.size1 + n.size1;
      n.type = Type::array(
          Type::array(Type::array(in->elem()->elem()->elem(),
                                  in->elem()->elem()->size() + two),
                      in->elem()->size() + two),
          in->size() + two);
      return n.type;
    }

    case Op::ArrayAccess: {
      const TypePtr arr = typecheck(n.args[0]);
      const TypePtr idx = typecheck(n.args[1]);
      expectArray(arr, "array access");
      if (!idx->isScalar() || idx->scalarKind() != ScalarKind::Int) {
        fail("array access index must be Int");
      }
      n.type = arr->elem();
      return n.type;
    }

    case Op::WriteTo: {
      const TypePtr dest = typecheck(n.args[0]);
      const TypePtr val = typecheck(n.args[1]);
      if (dest->isScalar()) {
        // Writing a single element in place (e.g. WriteTo(next[idx], v)).
        if (!typeEquals(dest, val)) {
          fail("WriteTo scalar destination/value mismatch: " +
               dest->toString() + " vs " + val->toString());
        }
      } else {
        expectArray(dest, "WriteTo destination");
        expectArray(val, "WriteTo value");
        if (!typeEquals(dest->scalarElem(), val->scalarElem())) {
          fail("WriteTo element type mismatch");
        }
      }
      n.type = val;
      return n.type;
    }

    case Op::Concat: {
      TypePtr elem;
      arith::Expr total(0);
      for (const auto& a : n.args) {
        const TypePtr t = typecheck(a);
        expectArray(t, "concat argument");
        if (elem == nullptr) {
          elem = t->elem();
        } else if (!typeEquals(elem, t->elem())) {
          fail("concat element type mismatch: " + elem->toString() + " vs " +
               t->elem()->toString());
        }
        total = total + t->size();
      }
      n.type = Type::array(elem, total);
      return n.type;
    }

    case Op::Skip: {
      const TypePtr lenT = typecheck(n.args[0]);
      if (!lenT->isScalar() || lenT->scalarKind() != ScalarKind::Int) {
        fail("Skip length must be Int");
      }
      n.type = Type::array(n.elemType, toArith(n.args[0]));
      return n.type;
    }

    case Op::ArrayCons: {
      const TypePtr e = typecheck(n.args[0]);
      n.type = Type::array(e, n.size1);
      return n.type;
    }
  }
  fail("unknown IR node");
}

}  // namespace lifta::ir
