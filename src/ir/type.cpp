#include "ir/type.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace lifta::ir {

std::string cTypeName(ScalarKind k, const std::string& realName) {
  switch (k) {
    case ScalarKind::Float:
    case ScalarKind::Double:
      return realName;
    case ScalarKind::Int:
      return "int";
    case ScalarKind::Bool:
      return "int";  // C has no bool in our dialect; int is conventional.
  }
  return "void";
}

TypePtr Type::scalar(ScalarKind k) {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::Scalar;
  t->scalar_ = k;
  return t;
}

TypePtr Type::array(TypePtr elem, arith::Expr size) {
  LIFTA_CHECK(elem != nullptr, "array element type is null");
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::Array;
  t->elem_ = std::move(elem);
  t->size_ = std::move(size);
  return t;
}

TypePtr Type::tuple(std::vector<TypePtr> elems) {
  auto t = std::shared_ptr<Type>(new Type());
  t->kind_ = TypeKind::Tuple;
  t->elems_ = std::move(elems);
  return t;
}

TypePtr Type::float_() {
  static const TypePtr t = scalar(ScalarKind::Float);
  return t;
}
TypePtr Type::double_() {
  static const TypePtr t = scalar(ScalarKind::Double);
  return t;
}
TypePtr Type::int_() {
  static const TypePtr t = scalar(ScalarKind::Int);
  return t;
}
TypePtr Type::bool_() {
  static const TypePtr t = scalar(ScalarKind::Bool);
  return t;
}

ScalarKind Type::scalarKind() const {
  LIFTA_CHECK(isScalar(), "scalarKind on non-scalar type");
  return scalar_;
}

const TypePtr& Type::elem() const {
  LIFTA_CHECK(isArray(), "elem on non-array type");
  return elem_;
}

const arith::Expr& Type::size() const {
  LIFTA_CHECK(isArray(), "size on non-array type");
  return size_;
}

const std::vector<TypePtr>& Type::elems() const {
  LIFTA_CHECK(isTuple(), "elems on non-tuple type");
  return elems_;
}

bool Type::equals(const TypePtr& other) const {
  if (other == nullptr) return false;
  if (kind_ != other->kind_) return false;
  switch (kind_) {
    case TypeKind::Scalar:
      return scalar_ == other->scalar_;
    case TypeKind::Array:
      return size_ == other->size_ && elem_->equals(other->elem_);
    case TypeKind::Tuple: {
      if (elems_.size() != other->elems_.size()) return false;
      for (std::size_t i = 0; i < elems_.size(); ++i) {
        if (!elems_[i]->equals(other->elems_[i])) return false;
      }
      return true;
    }
  }
  return false;
}

bool typeEquals(const TypePtr& a, const TypePtr& b) {
  return a != nullptr && a->equals(b);
}

std::string Type::toString() const {
  switch (kind_) {
    case TypeKind::Scalar:
      switch (scalar_) {
        case ScalarKind::Float:
          return "Float";
        case ScalarKind::Double:
          return "Double";
        case ScalarKind::Int:
          return "Int";
        case ScalarKind::Bool:
          return "Bool";
      }
      return "?";
    case TypeKind::Array:
      return "[" + elem_->toString() + "]_" + size_.toString();
    case TypeKind::Tuple: {
      std::vector<std::string> parts;
      parts.reserve(elems_.size());
      for (const auto& e : elems_) parts.push_back(e->toString());
      return "(" + join(parts, ", ") + ")";
    }
  }
  return "?";
}

arith::Expr Type::flatCount() const {
  switch (kind_) {
    case TypeKind::Scalar:
      return arith::Expr(1);
    case TypeKind::Array:
      return size_ * elem_->flatCount();
    case TypeKind::Tuple:
      LIFTA_CHECK(false, "flatCount on tuple type");
  }
  return arith::Expr(0);
}

TypePtr Type::scalarElem() const {
  if (isArray()) return elem_->scalarElem();
  LIFTA_CHECK(isScalar(), "scalarElem on tuple type");
  // Return the canonical singleton for this scalar kind.
  switch (scalar_) {
    case ScalarKind::Float:
      return float_();
    case ScalarKind::Double:
      return double_();
    case ScalarKind::Int:
      return int_();
    case ScalarKind::Bool:
      return bool_();
  }
  return float_();
}

}  // namespace lifta::ir
