// LIFT IR expressions and patterns.
//
// The IR follows the LIFT papers (Steuwer et al. CGO'17; Hagedorn et al.
// CGO'18) plus the four device-side primitives this paper adds (§IV, Table I):
//
//   WriteTo   — redirect an expression's output into an existing buffer
//               (enables in-place updates; suppresses output allocation)
//   Concat    — concatenate arrays; children write at accumulated offsets
//               (lowered through an OffsetView, §IV-B)
//   Skip      — type-level array of length i that generates *no code*; it
//               only shifts the offset of subsequent Concat children
//   ArrayCons — an array built by repeating one element n times
//
// Nodes are intentionally a single tagged struct (not a class hierarchy):
// the code generator and type checker are exhaustive switches over `Op`,
// which keeps "add a primitive" diffs small — the extensibility property the
// paper leans on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arith/expr.hpp"
#include "ir/type.hpp"

namespace lifta::ir {

enum class Op {
  Param,       // function/lambda parameter reference
  Literal,     // scalar constant
  Binary,      // scalar binary op
  Unary,       // scalar unary op
  Select,      // ternary c ? a : b
  Cast,        // scalar conversion
  UserFunCall, // call of a named user function with a C body
  Let,         // val x = e1; e2   (sequencing + sharing)
  MakeTuple,   // tuple construction
  Get,         // tuple projection
  Zip,         // element-wise pairing of arrays (a view; no data movement)
  Map,         // apply a lambda to each array element (Seq/Glb/Wrg/Lcl)
  Reduce,      // sequential reduction to a scalar
  Slide,       // overlapping neighborhoods (stencil windows)
  Pad,         // boundary enlargement (constant or clamp)
  Split,       // [T]_{n*m} -> [[T]_m]_n
  Join,        // inverse of Split
  Iota,        // [0, 1, ..., n-1] : [Int]_n
  Transpose,   // [[T]_m]_n -> [[T]_n]_m (a view; no data movement)
  Slide3,      // 3D neighborhoods over a nested 3D array (Listing 6)
  Pad3,        // 3D boundary enlargement on every face (Listing 6)
  ArrayAccess, // dynamic gather: arr[idx] with idx a runtime scalar
  WriteTo,     // NEW (paper §IV): write result of args[1] into args[0]
  Concat,      // NEW (paper §IV): concatenation of arrays
  Skip,        // NEW (paper §IV): no-op placeholder array of length args[0]
  ArrayCons,   // NEW (paper §IV): array of one repeated element
};

enum class MapKind { Seq, Glb, Wrg, Lcl };
enum class BinOp { Add, Sub, Mul, Div, Eq, Ne, Lt, Le, Gt, Ge, And, Or, Min, Max };
enum class UnOp { Neg, Not };
enum class PadMode { Zero, Clamp };

struct Node;
using ExprPtr = std::shared_ptr<Node>;

/// A lambda abstraction used as the functional argument of Map/Reduce.
struct Lambda {
  std::vector<ExprPtr> params;  // each an Op::Param node
  ExprPtr body;
};
using LambdaPtr = std::shared_ptr<Lambda>;

/// A user function: an opaque scalar computation given as a C body, as in
/// LIFT (e.g. UserFun("add", {"a","b"}, "return a + b;", ...)).
struct UserFun {
  std::string name;
  std::vector<std::string> paramNames;
  std::vector<TypePtr> paramTypes;
  TypePtr returnType;
  std::string body;  // C statement list using paramNames; must `return`.
};
using UserFunPtr = std::shared_ptr<UserFun>;

struct Node {
  Op op;
  TypePtr type;  // set at construction for leaves; filled in by typecheck()

  std::vector<ExprPtr> args;  // children (meaning depends on op)

  // --- payloads ---
  std::string name;        // Param: variable name
  double literalValue = 0; // Literal (also holds int value exactly up to 2^53)
  ScalarKind literalKind = ScalarKind::Float;
  BinOp bin = BinOp::Add;
  UnOp un = UnOp::Neg;
  MapKind mapKind = MapKind::Seq;
  int mapDim = 0;          // Glb/Wrg/Lcl dimension (0..2)
  LambdaPtr lambda;        // Map/Reduce
  UserFunPtr userFun;      // UserFunCall
  int tupleIndex = 0;      // Get
  arith::Expr size1;       // Slide size / Pad left / Split n / Iota n / ArrayCons n
  arith::Expr size2;       // Slide step / Pad right
  PadMode padMode = PadMode::Zero;
  TypePtr elemType;        // Skip: element type
};

// ---------------------------------------------------------------------------
// Builders. All return shared nodes; `type` is filled where it is intrinsic.
// ---------------------------------------------------------------------------

ExprPtr param(const std::string& name, TypePtr type);
ExprPtr litFloat(double v, ScalarKind k = ScalarKind::Float);
ExprPtr litInt(std::int64_t v);
ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b);
ExprPtr unary(UnOp op, ExprPtr a);
ExprPtr select(ExprPtr cond, ExprPtr ifTrue, ExprPtr ifFalse);
ExprPtr cast(TypePtr to, ExprPtr a);
ExprPtr call(UserFunPtr fn, std::vector<ExprPtr> args);
ExprPtr let(ExprPtr p, ExprPtr value, ExprPtr body);
ExprPtr makeTuple(std::vector<ExprPtr> elems);
ExprPtr get(ExprPtr tuple, int index);
ExprPtr zip(std::vector<ExprPtr> arrays);
ExprPtr map(MapKind kind, int dim, LambdaPtr f, ExprPtr array);
ExprPtr mapSeq(LambdaPtr f, ExprPtr array);
ExprPtr mapGlb(LambdaPtr f, ExprPtr array, int dim = 0);
ExprPtr reduceSeq(LambdaPtr f, ExprPtr init, ExprPtr array);
ExprPtr slide(arith::Expr size, arith::Expr step, ExprPtr array);
ExprPtr pad(arith::Expr left, arith::Expr right, PadMode mode, ExprPtr array);
ExprPtr splitN(arith::Expr n, ExprPtr array);
ExprPtr joinA(ExprPtr array);
ExprPtr iota(arith::Expr n);
ExprPtr transpose(ExprPtr array);
/// 3D sliding neighborhoods: [[[T]_x]_y]_z -> windows of size^3 at every
/// (stepped) position, indexed m[z][y][x][dz][dy][dx].
ExprPtr slide3(arith::Expr size, arith::Expr step, ExprPtr array3d);
/// Pads every face of a 3D array by `amount` (Zero or Clamp).
ExprPtr pad3(arith::Expr amount, PadMode mode, ExprPtr array3d);
ExprPtr arrayAccess(ExprPtr array, ExprPtr index);
ExprPtr writeTo(ExprPtr dest, ExprPtr value);
ExprPtr concat(std::vector<ExprPtr> arrays);
ExprPtr skip(TypePtr elemType, ExprPtr length);
ExprPtr arrayCons(ExprPtr elem, arith::Expr n);

/// Lambda construction helper.
LambdaPtr lambda(std::vector<ExprPtr> params, ExprPtr body);

// Convenience scalar operators on ExprPtr.
inline ExprPtr operator+(ExprPtr a, ExprPtr b) { return binary(BinOp::Add, std::move(a), std::move(b)); }
inline ExprPtr operator-(ExprPtr a, ExprPtr b) { return binary(BinOp::Sub, std::move(a), std::move(b)); }
inline ExprPtr operator*(ExprPtr a, ExprPtr b) { return binary(BinOp::Mul, std::move(a), std::move(b)); }
inline ExprPtr operator/(ExprPtr a, ExprPtr b) { return binary(BinOp::Div, std::move(a), std::move(b)); }

}  // namespace lifta::ir
