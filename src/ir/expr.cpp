#include "ir/expr.hpp"

#include "common/error.hpp"

namespace lifta::ir {

namespace {
ExprPtr node(Op op) {
  auto n = std::make_shared<Node>();
  n->op = op;
  return n;
}
}  // namespace

ExprPtr param(const std::string& name, TypePtr type) {
  auto n = node(Op::Param);
  n->name = name;
  n->type = std::move(type);
  return n;
}

ExprPtr litFloat(double v, ScalarKind k) {
  LIFTA_CHECK(k == ScalarKind::Float || k == ScalarKind::Double,
              "litFloat requires a floating scalar kind");
  auto n = node(Op::Literal);
  n->literalValue = v;
  n->literalKind = k;
  n->type = Type::scalar(k);
  return n;
}

ExprPtr litInt(std::int64_t v) {
  auto n = node(Op::Literal);
  n->literalValue = static_cast<double>(v);
  n->literalKind = ScalarKind::Int;
  n->type = Type::int_();
  return n;
}

ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b) {
  auto n = node(Op::Binary);
  n->bin = op;
  n->args = {std::move(a), std::move(b)};
  return n;
}

ExprPtr unary(UnOp op, ExprPtr a) {
  auto n = node(Op::Unary);
  n->un = op;
  n->args = {std::move(a)};
  return n;
}

ExprPtr select(ExprPtr cond, ExprPtr ifTrue, ExprPtr ifFalse) {
  auto n = node(Op::Select);
  n->args = {std::move(cond), std::move(ifTrue), std::move(ifFalse)};
  return n;
}

ExprPtr cast(TypePtr to, ExprPtr a) {
  auto n = node(Op::Cast);
  n->type = std::move(to);
  n->args = {std::move(a)};
  return n;
}

ExprPtr call(UserFunPtr fn, std::vector<ExprPtr> args) {
  LIFTA_CHECK(fn != nullptr, "null user function");
  auto n = node(Op::UserFunCall);
  n->userFun = std::move(fn);
  n->args = std::move(args);
  return n;
}

ExprPtr let(ExprPtr p, ExprPtr value, ExprPtr body) {
  LIFTA_CHECK(p->op == Op::Param, "let binder must be a param node");
  auto n = node(Op::Let);
  n->args = {std::move(p), std::move(value), std::move(body)};
  return n;
}

ExprPtr makeTuple(std::vector<ExprPtr> elems) {
  auto n = node(Op::MakeTuple);
  n->args = std::move(elems);
  return n;
}

ExprPtr get(ExprPtr tuple, int index) {
  auto n = node(Op::Get);
  n->tupleIndex = index;
  n->args = {std::move(tuple)};
  return n;
}

ExprPtr zip(std::vector<ExprPtr> arrays) {
  LIFTA_CHECK(arrays.size() >= 2, "zip needs at least two arrays");
  auto n = node(Op::Zip);
  n->args = std::move(arrays);
  return n;
}

ExprPtr map(MapKind kind, int dim, LambdaPtr f, ExprPtr array) {
  LIFTA_CHECK(f != nullptr && f->params.size() == 1,
              "map lambda must take exactly one parameter");
  auto n = node(Op::Map);
  n->mapKind = kind;
  n->mapDim = dim;
  n->lambda = std::move(f);
  n->args = {std::move(array)};
  return n;
}

ExprPtr mapSeq(LambdaPtr f, ExprPtr array) {
  return map(MapKind::Seq, 0, std::move(f), std::move(array));
}

ExprPtr mapGlb(LambdaPtr f, ExprPtr array, int dim) {
  return map(MapKind::Glb, dim, std::move(f), std::move(array));
}

ExprPtr reduceSeq(LambdaPtr f, ExprPtr init, ExprPtr array) {
  LIFTA_CHECK(f != nullptr && f->params.size() == 2,
              "reduce lambda must take (acc, element)");
  auto n = node(Op::Reduce);
  n->lambda = std::move(f);
  n->args = {std::move(init), std::move(array)};
  return n;
}

ExprPtr slide(arith::Expr size, arith::Expr step, ExprPtr array) {
  auto n = node(Op::Slide);
  n->size1 = std::move(size);
  n->size2 = std::move(step);
  n->args = {std::move(array)};
  return n;
}

ExprPtr pad(arith::Expr left, arith::Expr right, PadMode mode, ExprPtr array) {
  auto n = node(Op::Pad);
  n->size1 = std::move(left);
  n->size2 = std::move(right);
  n->padMode = mode;
  n->args = {std::move(array)};
  return n;
}

ExprPtr splitN(arith::Expr nElems, ExprPtr array) {
  auto n = node(Op::Split);
  n->size1 = std::move(nElems);
  n->args = {std::move(array)};
  return n;
}

ExprPtr joinA(ExprPtr array) {
  auto n = node(Op::Join);
  n->args = {std::move(array)};
  return n;
}

ExprPtr iota(arith::Expr count) {
  auto n = node(Op::Iota);
  n->size1 = std::move(count);
  n->type = Type::array(Type::int_(), n->size1);
  return n;
}

ExprPtr transpose(ExprPtr array) {
  auto n = node(Op::Transpose);
  n->args = {std::move(array)};
  return n;
}

ExprPtr slide3(arith::Expr size, arith::Expr step, ExprPtr array3d) {
  auto n = node(Op::Slide3);
  n->size1 = std::move(size);
  n->size2 = std::move(step);
  n->args = {std::move(array3d)};
  return n;
}

ExprPtr pad3(arith::Expr amount, PadMode mode, ExprPtr array3d) {
  auto n = node(Op::Pad3);
  n->size1 = std::move(amount);
  n->padMode = mode;
  n->args = {std::move(array3d)};
  return n;
}

ExprPtr arrayAccess(ExprPtr array, ExprPtr index) {
  auto n = node(Op::ArrayAccess);
  n->args = {std::move(array), std::move(index)};
  return n;
}

ExprPtr writeTo(ExprPtr dest, ExprPtr value) {
  auto n = node(Op::WriteTo);
  n->args = {std::move(dest), std::move(value)};
  return n;
}

ExprPtr concat(std::vector<ExprPtr> arrays) {
  LIFTA_CHECK(!arrays.empty(), "concat needs at least one array");
  auto n = node(Op::Concat);
  n->args = std::move(arrays);
  return n;
}

ExprPtr skip(TypePtr elemType, ExprPtr length) {
  auto n = node(Op::Skip);
  n->elemType = std::move(elemType);
  n->args = {std::move(length)};
  return n;
}

ExprPtr arrayCons(ExprPtr elem, arith::Expr count) {
  auto n = node(Op::ArrayCons);
  n->size1 = std::move(count);
  n->args = {std::move(elem)};
  return n;
}

LambdaPtr lambda(std::vector<ExprPtr> params, ExprPtr body) {
  for (const auto& p : params) {
    LIFTA_CHECK(p->op == Op::Param, "lambda parameters must be param nodes");
  }
  auto l = std::make_shared<Lambda>();
  l->params = std::move(params);
  l->body = std::move(body);
  return l;
}

}  // namespace lifta::ir
