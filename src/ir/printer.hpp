// Human-readable printing of LIFT IR expressions, in the surface style the
// paper uses in its listings (Map(f) << arr, Concat(Skip(...), ...)).
// Used by tests (structure assertions) and the codegen_explore example.
#pragma once

#include <string>

#include "ir/expr.hpp"

namespace lifta::ir {

/// Pretty multi-line rendering of the expression.
std::string print(const ExprPtr& expr);

/// Single-line compact rendering.
std::string printCompact(const ExprPtr& expr);

}  // namespace lifta::ir
