// The simulated OpenCL runtime.
//
// Mirrors the OpenCL 1.2 host API surface the paper's host code generator
// targets (§IV-A Table I): buffers with explicit write/read (ToGPU/ToHost),
// programs built from source (JIT via the host compiler), kernels with
// indexed arguments, and in-order command queues whose events expose
// profiling times — the paper reports medians over 2000 executions from the
// OpenCL profiling API.
//
// NDRange execution: work-groups are distributed over a thread pool; the
// work-items of one group run sequentially on one thread (the generated
// kernels are barrier-free, so this is semantics-preserving).
#pragma once

#include <array>
#include <cstring>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/thread_pool.hpp"
#include "ocl/device.hpp"
#include "ocl/jit.hpp"

namespace lifta::ocl {

/// Work-item identity passed to generated kernels. Layout must match the
/// lifta_wi_ctx struct in the codegen preamble.
struct WiCtx {
  long gid[3];
  long gsz[3];
  long lid[3];
  long lsz[3];
  long wg[3];
  long nwg[3];
};

using KernelEntry = void (*)(void**, const WiCtx*);

/// Device-side memory. Host code moves data with write()/read(), mirroring
/// enqueueWriteBuffer/enqueueReadBuffer.
class Buffer {
public:
  explicit Buffer(std::size_t bytes) : mem_(bytes) {}

  std::size_t size() const { return mem_.size(); }
  void* data() { return mem_.data(); }
  const void* data() const { return mem_.data(); }

  void write(const void* src, std::size_t bytes, std::size_t offset = 0);
  void read(void* dst, std::size_t bytes, std::size_t offset = 0) const;

private:
  AlignedBuffer mem_;
};
using BufferPtr = std::shared_ptr<Buffer>;

/// Profiling record of one enqueued command.
struct Event {
  double milliseconds = 0.0;
};

struct NDRange {
  std::array<std::size_t, 3> global{1, 1, 1};
  std::array<std::size_t, 3> local{1, 1, 1};
  int dims = 1;

  static NDRange linear(std::size_t globalSize, std::size_t localSize);
};

class Context;

/// A compiled program; a thin wrapper over the JIT'ed shared object.
class Program {
public:
  /// Entry point lookup (clCreateKernel analogue).
  KernelEntry entry(const std::string& kernelName) const;
  const std::string& source() const { return source_; }

private:
  friend class Context;
  Program(std::string source, std::shared_ptr<SharedObject> so)
      : source_(std::move(source)), so_(std::move(so)) {}
  std::string source_;
  std::shared_ptr<SharedObject> so_;
};
using ProgramPtr = std::shared_ptr<Program>;

/// A kernel instance with bound arguments.
class Kernel {
public:
  Kernel(ProgramPtr program, const std::string& name);

  const std::string& name() const { return name_; }

  void setArg(int index, BufferPtr buffer);
  void setArg(int index, int value);
  void setArg(int index, float value);
  void setArg(int index, double value);

  /// Number of argument slots currently set (contiguity is checked at
  /// launch).
  std::size_t argCount() const { return args_.size(); }

private:
  friend class CommandQueue;
  struct ScalarSlot {
    std::array<unsigned char, 8> bytes{};
  };
  using Arg = std::variant<std::monostate, BufferPtr, ScalarSlot>;

  void setScalar(int index, const void* src, std::size_t bytes);
  void ensureSlot(int index);

  ProgramPtr program_;
  std::string name_;
  KernelEntry entry_ = nullptr;
  std::vector<Arg> args_;
};

/// Owns the device profile, its executor threads, and program builds.
class Context {
public:
  explicit Context(DeviceProfile profile = nativeDevice());

  const DeviceProfile& device() const { return profile_; }
  ThreadPool& pool() { return *pool_; }

  /// clBuildProgram analogue; cached process-wide by (flags, source) hash.
  /// `buildOptions` are extra compiler flags (clBuildProgram's options
  /// string); they append after the JIT's base flags, so a later -O wins.
  ProgramPtr buildProgram(const std::string& source,
                          const std::string& buildOptions = "");

  BufferPtr allocate(std::size_t bytes) {
    return std::make_shared<Buffer>(bytes);
  }

private:
  DeviceProfile profile_;
  std::unique_ptr<ThreadPool> pool_;
};

/// In-order queue with profiling. Execution is synchronous: each enqueue
/// completes before returning, and the returned Event holds its duration.
class CommandQueue {
public:
  explicit CommandQueue(Context& ctx) : ctx_(ctx) {}

  Event enqueueWrite(Buffer& dst, const void* src, std::size_t bytes);
  Event enqueueRead(const Buffer& src, void* dst, std::size_t bytes);
  Event enqueueNDRange(Kernel& kernel, const NDRange& range);

  /// All work is already complete (in-order synchronous queue); provided for
  /// API fidelity.
  void finish() {}

private:
  Context& ctx_;
};

}  // namespace lifta::ocl
