// Simulated device profiles.
//
// The paper evaluates on four discrete GPUs (Table III). This environment
// has no GPU, so a *device profile* carries the identity and the reported
// hardware metrics of each platform while execution happens on the host CPU
// through the thread-pool NDRange executor. The LIFT-vs-handwritten
// comparison — the paper's actual claim — is preserved because both code
// paths execute through the same runtime, exactly as both went through the
// same OpenCL driver on real hardware.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lifta::ocl {

struct DeviceProfile {
  std::string name;
  /// Reported metrics from Table III (used for reporting and roofline
  /// commentary only; they do not affect simulated execution speed).
  double memBandwidthGBs = 0.0;
  double peakSpGflops = 0.0;
  /// Execution configuration.
  int maxWorkGroupSize = 1024;
  std::size_t threads = 0;  // 0 = hardware concurrency
};

/// The four platforms of Table III.
std::vector<DeviceProfile> paperPlatforms();

/// The actual host machine, presented as an OpenCL-style device.
DeviceProfile nativeDevice();

}  // namespace lifta::ocl
