#include "ocl/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <sstream>

#include "common/error.hpp"

namespace lifta::ocl {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string compilerCommand() {
  if (const char* env = std::getenv("LIFTA_CXX")) return env;
  return "c++";
}

std::string readFile(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

struct Jit::Impl {
  std::mutex mu;
  std::map<std::uint64_t, std::shared_ptr<SharedObject>> cache;
};

SharedObject::~SharedObject() {
  if (handle_ != nullptr) dlclose(handle_);
}

void* SharedObject::symbol(const std::string& name) const {
  dlerror();  // clear
  void* sym = dlsym(handle_, name.c_str());
  if (sym == nullptr) {
    const char* err = dlerror();
    throw OclError("symbol '" + name + "' not found in " + path_ +
                   (err ? std::string(": ") + err : ""));
  }
  return sym;
}

Jit::Jit() : impl_(std::make_shared<Impl>()) {
  char tmpl[] = "/tmp/lifta-jit-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) throw OclError("cannot create JIT scratch directory");
  scratchDir_ = dir;
}

Jit& Jit::instance() {
  static Jit jit;
  return jit;
}

std::shared_ptr<SharedObject> Jit::compile(const std::string& source) {
  const std::uint64_t h = fnv1a(source);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->cache.find(h);
    if (it != impl_->cache.end()) return it->second;
  }

  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(h));
  const std::string base = scratchDir_ + "/k_" + hex;
  const std::string src = base + ".cpp";
  const std::string so = base + ".so";
  const std::string log = base + ".log";

  {
    std::ofstream f(src);
    f << source;
    if (!f) throw OclError("cannot write kernel source: " + src);
  }

  // No -march=native and contraction off: the JIT'd kernels must execute the
  // identical FP operation sequence as the reference build (see header).
  const std::string cmd = compilerCommand() +
                          " -O2 -ffp-contract=off -std=c++17 -shared -fPIC " +
                          "-x c++ '" + src + "' -o '" + so + "' 2> '" + log +
                          "'";
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    throw OclError("kernel build failed (exit " + std::to_string(rc) +
                   ")\n--- source ---\n" + source + "\n--- compiler log ---\n" +
                   readFile(log));
  }

  void* handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    throw OclError(std::string("dlopen failed: ") + dlerror());
  }
  auto obj = std::shared_ptr<SharedObject>(new SharedObject(handle, so));
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->cache[h] = obj;
    ++compiled_;
  }
  return obj;
}

}  // namespace lifta::ocl
