#include "ocl/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <list>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace lifta::ocl {

namespace fs = std::filesystem;

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string compilerCommand() {
  if (const char* env = std::getenv("LIFTA_CXX")) return env;
  return "c++";
}

/// First line of `cmd --version`, cached per command. The probe runs once
/// per compiler per process; "unknown" (also cached) when the command
/// cannot be run or prints nothing.
std::string probedCompilerVersion(const std::string& cmd) {
  static std::mutex mu;
  static std::map<std::string, std::string> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(cmd);
  if (it != cache.end()) return it->second;

  std::string version = "unknown";
  FILE* p = popen((cmd + " --version 2>/dev/null").c_str(), "r");
  if (p != nullptr) {
    char line[512];
    if (std::fgets(line, sizeof line, p) != nullptr) {
      std::string s(line);
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
      if (!s.empty()) version = s;
    }
    pclose(p);
  }
  cache.emplace(cmd, version);
  return version;
}

// No -march=native and contraction off: the JIT'd kernels must execute the
// identical FP operation sequence as the reference build (see header).
const char* kBaseFlags = "-O2 -ffp-contract=off -std=c++17 -shared -fPIC";

std::string readFile(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::string hashHex(std::uint64_t h) {
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(h));
  return hex;
}

/// Removes the registered paths on destruction unless released — compile
/// failures must not litter the scratch directory.
class TempFiles {
public:
  ~TempFiles() {
    if (released_) return;
    std::error_code ec;
    for (const auto& p : paths_) fs::remove(p, ec);
  }
  void add(const std::string& p) { paths_.push_back(p); }
  void release() { released_ = true; }

private:
  std::vector<std::string> paths_;
  bool released_ = false;
};

}  // namespace

struct Jit::Impl {
  mutable std::mutex mu;

  struct Entry {
    std::shared_ptr<SharedObject> obj;
    std::list<std::uint64_t>::iterator lruPos;
  };
  std::map<std::uint64_t, Entry> cache;
  std::list<std::uint64_t> lru;  // front = most recently used
  std::size_t capacity = 256;

  std::string diskDir;  // "" = disabled
  Stats stats;

  /// Must be called with `mu` held.
  void evictOverCapacity() {
    while (cache.size() > capacity) {
      const std::uint64_t victim = lru.back();
      lru.pop_back();
      cache.erase(victim);
      ++stats.evictions;
    }
  }

  /// Must be called with `mu` held.
  void insert(std::uint64_t key, std::shared_ptr<SharedObject> obj) {
    lru.push_front(key);
    cache[key] = Entry{std::move(obj), lru.begin()};
    evictOverCapacity();
  }
};

SharedObject::~SharedObject() {
  if (handle_ != nullptr) dlclose(handle_);
}

void* SharedObject::symbol(const std::string& name) const {
  dlerror();  // clear
  void* sym = dlsym(handle_, name.c_str());
  if (sym == nullptr) {
    const char* err = dlerror();
    throw OclError("symbol '" + name + "' not found in " + path_ +
                   (err ? std::string(": ") + err : ""));
  }
  return sym;
}

Jit::Jit() : impl_(std::make_shared<Impl>()) {
  char tmpl[] = "/tmp/lifta-jit-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) throw OclError("cannot create JIT scratch directory");
  scratchDir_ = dir;
  if (const char* cap = std::getenv("LIFTA_JIT_MEM_CACHE")) {
    const long n = std::atol(cap);
    if (n >= 1) impl_->capacity = static_cast<std::size_t>(n);
  }
  if (const char* disk = std::getenv("LIFTA_JIT_CACHE_DIR")) {
    if (disk[0] != '\0') setDiskCacheDir(disk);
  }
}

Jit& Jit::instance() {
  static Jit jit;
  return jit;
}

std::string Jit::compilerIdentity() {
  const std::string cmd = compilerCommand();
  std::string version;
  if (const char* env = std::getenv("LIFTA_CXX_VERSION")) {
    version = env;
  } else {
    version = probedCompilerVersion(cmd);
  }
  return cmd + '\x1f' + version;
}

Jit::Stats Jit::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

void Jit::setMemoryCacheCapacity(std::size_t n) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->capacity = n < 1 ? 1 : n;
  impl_->evictOverCapacity();
}

void Jit::clearMemoryCache() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->cache.clear();
  impl_->lru.clear();
}

void Jit::setDiskCacheDir(const std::string& dir) {
  std::string canonical = dir;
  if (!canonical.empty()) {
    std::error_code ec;
    fs::create_directories(canonical, ec);
    if (ec) {
      throw OclError("cannot create JIT disk cache directory '" + canonical +
                     "': " + ec.message());
    }
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->diskDir = std::move(canonical);
}

std::string Jit::diskCacheDir() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->diskDir;
}

std::shared_ptr<SharedObject> Jit::compile(const std::string& source,
                                           const std::string& extraFlags) {
  // Content address: compiler command *and version*, every flag and the
  // full source all feed the key, so a cached object can never be served
  // for a build that would have produced different code — including after
  // a system compiler upgrade against a persistent disk cache. (Generated
  // sources additionally carry their specialization digest in a header
  // comment, so specialized variants of a kernel hash apart from the
  // generic one by construction.)
  const std::string flags =
      extraFlags.empty() ? std::string(kBaseFlags)
                         : std::string(kBaseFlags) + " " + extraFlags;
  const std::uint64_t h =
      fnv1a(compilerIdentity() + '\x1f' + flags + '\x1f' + source);

  std::string diskDir;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->cache.find(h);
    if (it != impl_->cache.end()) {
      ++impl_->stats.hits;
      // Refresh LRU position.
      impl_->lru.erase(it->second.lruPos);
      impl_->lru.push_front(h);
      it->second.lruPos = impl_->lru.begin();
      return it->second.obj;
    }
    ++impl_->stats.misses;
    diskDir = impl_->diskDir;
  }

  const std::string hex = hashHex(h);

  // Disk cache: a previously compiled object under the same content hash is
  // loaded directly — the warm path never invokes the compiler.
  if (!diskDir.empty()) {
    const std::string cached = diskDir + "/k_" + hex + ".so";
    std::error_code ec;
    if (fs::exists(cached, ec)) {
      void* handle = dlopen(cached.c_str(), RTLD_NOW | RTLD_LOCAL);
      if (handle != nullptr) {
        auto obj = std::shared_ptr<SharedObject>(
            new SharedObject(handle, cached));
        std::lock_guard<std::mutex> lock(impl_->mu);
        ++impl_->stats.diskHits;
        impl_->insert(h, obj);
        return obj;
      }
      // Corrupt/foreign cache entry (truncated write, bad disk, object from
      // an incompatible loader): evict it and fall through to a cold
      // compile — a damaged cache degrades to cache-off behaviour, it never
      // fails the job.
      const char* err = dlerror();
      std::fprintf(stderr,
                   "lifta: evicting corrupt JIT cache entry %s (%s)\n",
                   cached.c_str(), err != nullptr ? err : "dlopen failed");
      fs::remove(cached, ec);
      std::lock_guard<std::mutex> lock(impl_->mu);
      ++impl_->stats.corruptEvictions;
    }
  }

  const std::string base = scratchDir_ + "/k_" + hex;
  const std::string src = base + ".cpp";
  const std::string so = base + ".so";
  const std::string log = base + ".log";

  TempFiles temps;
  temps.add(src);
  temps.add(so);
  temps.add(log);

  {
    std::ofstream f(src);
    f << source;
    if (!f) throw OclError("cannot write kernel source: " + src);
  }

  const std::string cmd = compilerCommand() + " " + flags + " -x c++ '" + src +
                          "' -o '" + so + "' 2> '" + log + "'";
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    // TempFiles removes src/so/log on unwind: failed builds leave nothing.
    throw OclError("kernel build failed (exit " + std::to_string(rc) +
                   ")\n--- source ---\n" + source + "\n--- compiler log ---\n" +
                   readFile(log));
  }

  void* handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    throw OclError(std::string("dlopen failed: ") + dlerror());
  }
  temps.release();  // the object (and its source, for debugging) stay live
  auto obj = std::shared_ptr<SharedObject>(new SharedObject(handle, so));

  if (!diskDir.empty()) {
    // Atomic publish: copy to a per-process temp name, then rename into
    // place so concurrent readers never see a partial object.
    const std::string tmp =
        diskDir + "/.k_" + hex + "." + std::to_string(getpid()) + ".tmp";
    const std::string fin = diskDir + "/k_" + hex + ".so";
    std::error_code ec;
    fs::copy_file(so, tmp, fs::copy_options::overwrite_existing, ec);
    if (!ec) fs::rename(tmp, fin, ec);
    if (ec) fs::remove(tmp, ec);  // best-effort: disk cache is an accelerator
  }

  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    ++impl_->stats.compiled;
    impl_->insert(h, obj);
  }
  return obj;
}

}  // namespace lifta::ocl
