// Asynchronous background JIT compilation (tier-1 of the tiered kernel
// execution design, DESIGN.md §12).
//
// A CompileQueue owns one background worker thread that feeds sources to
// Jit::instance().compile(). Submitting returns a Ticket immediately; the
// caller keeps running its tier-0 (generic) kernel and polls the ticket at
// step boundaries, hot-swapping once the specialized object is Ready.
// Because the worker compiles through the process-wide Jit, a finished
// ticket leaves the object in the Jit memory cache — a later
// Context::buildProgram() of the same source is an instant cache hit.
//
// Submissions deduplicate on (flags, source): a second submit of an
// in-flight compile returns the same Ticket. Pending tickets can be
// cancelled (batch teardown); a ticket already Building runs to completion
// and simply parks its result in the Jit cache.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "ocl/jit.hpp"

namespace lifta::ocl {

class CompileQueue {
 public:
  /// Process-wide queue (constructed on first use; the constructor touches
  /// Jit::instance() so the Jit outlives the worker thread).
  static CompileQueue& instance();

  enum class State { Pending, Building, Ready, Failed, Cancelled };

  class Ticket {
   public:
    State state() const;
    /// Non-null exactly when state() == Ready.
    std::shared_ptr<SharedObject> object() const;
    /// Compiler diagnostics when state() == Failed.
    std::string error() const;
    /// True for Ready/Failed/Cancelled.
    bool done() const;

   private:
    friend class CompileQueue;
    Ticket(std::string key, std::string source, std::string flags)
        : key_(std::move(key)),
          source_(std::move(source)),
          flags_(std::move(flags)) {}
    const std::string key_;
    const std::string source_;
    const std::string flags_;
    mutable std::mutex mu_;
    mutable std::condition_variable cv_;
    State state_ = State::Pending;
    std::shared_ptr<SharedObject> obj_;
    std::string error_;
  };
  using TicketPtr = std::shared_ptr<Ticket>;

  /// Enqueues a compile; returns an existing ticket when an identical
  /// (flags, source) submission is still pending or building.
  TicketPtr submit(const std::string& source,
                   const std::string& extraFlags = "");

  /// Cancels a pending ticket; returns false when the build already
  /// started (it then runs to completion and warms the Jit cache).
  bool cancel(const TicketPtr& t);

  /// Blocks until the ticket is terminal; returns the object for Ready,
  /// nullptr for Failed/Cancelled (inspect t->error()).
  std::shared_ptr<SharedObject> wait(const TicketPtr& t);

  /// Blocks until every submitted ticket is terminal.
  void drain();

  /// Test hook: a paused worker finishes its current build, then idles
  /// without starting new ones (keeps tickets deterministically Pending so
  /// cancellation paths can be exercised).
  void setPaused(bool paused);

  struct Stats {
    std::size_t submitted = 0;  // submit() calls, including deduped
    std::size_t deduped = 0;    // submits coalesced onto a live ticket
    std::size_t compiled = 0;   // tickets that reached Ready
    std::size_t failed = 0;     // tickets that reached Failed
    std::size_t cancelled = 0;  // tickets cancelled while Pending
  };
  Stats stats() const;

 private:
  CompileQueue();
  ~CompileQueue();
  CompileQueue(const CompileQueue&) = delete;
  CompileQueue& operator=(const CompileQueue&) = delete;

  void workerLoop();
  /// With mu_ held: number of tickets not yet terminal.
  std::size_t liveLocked() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // worker wakeup
  std::condition_variable idleCv_;    // drain() wakeup
  std::deque<TicketPtr> queue_;
  std::map<std::string, TicketPtr> live_;  // key -> pending/building ticket
  Stats stats_;
  bool paused_ = false;
  bool shutdown_ = false;
  bool building_ = false;
  bool workerStarted_ = false;
  std::thread worker_;
};

}  // namespace lifta::ocl
