#include "ocl/device.hpp"

#include <thread>

namespace lifta::ocl {

std::vector<DeviceProfile> paperPlatforms() {
  // Table III: Platforms and Hardware Metrics used.
  return {
      DeviceProfile{"NVIDIA GTX 780", 288.0, 3977.0, 1024, 0},
      DeviceProfile{"AMD Radeon HD 7970", 288.0, 4096.0, 256, 0},
      DeviceProfile{"NVIDIA TITAN Black", 337.0, 5120.0, 1024, 0},
      DeviceProfile{"AMD Radeon R9 295X2", 320.0, 5733.0, 256, 0},
  };
}

DeviceProfile nativeDevice() {
  DeviceProfile d;
  d.name = "Host CPU (simulated OpenCL device)";
  d.memBandwidthGBs = 0.0;
  d.peakSpGflops = 0.0;
  d.maxWorkGroupSize = 1024;
  d.threads = std::thread::hardware_concurrency();
  return d;
}

}  // namespace lifta::ocl
