#include "ocl/runtime.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace lifta::ocl {

// --- Buffer -----------------------------------------------------------------

void Buffer::write(const void* src, std::size_t bytes, std::size_t offset) {
  // Checked without `offset + bytes`, which wraps for huge offsets and would
  // accept out-of-range writes.
  LIFTA_CHECK(bytes <= mem_.size() && offset <= mem_.size() - bytes,
              "buffer write out of range");
  std::memcpy(static_cast<char*>(mem_.data()) + offset, src, bytes);
}

void Buffer::read(void* dst, std::size_t bytes, std::size_t offset) const {
  LIFTA_CHECK(bytes <= mem_.size() && offset <= mem_.size() - bytes,
              "buffer read out of range");
  std::memcpy(dst, static_cast<const char*>(mem_.data()) + offset, bytes);
}

// --- NDRange ----------------------------------------------------------------

NDRange NDRange::linear(std::size_t globalSize, std::size_t localSize) {
  // Zero global size is rejected here so both construction and enqueue
  // report the same error instead of deferring to launch time.
  if (globalSize == 0) {
    throw OclError("global size must be nonzero");
  }
  if (localSize == 0 || globalSize % localSize != 0) {
    throw OclError("global size " + std::to_string(globalSize) +
                   " is not a multiple of local size " +
                   std::to_string(localSize));
  }
  NDRange r;
  r.global = {globalSize, 1, 1};
  r.local = {localSize, 1, 1};
  r.dims = 1;
  return r;
}

// --- Program / Kernel ---------------------------------------------------------

KernelEntry Program::entry(const std::string& kernelName) const {
  return reinterpret_cast<KernelEntry>(so_->symbol(kernelName));
}

Kernel::Kernel(ProgramPtr program, const std::string& name)
    : program_(std::move(program)), name_(name) {
  entry_ = program_->entry(name);
}

void Kernel::ensureSlot(int index) {
  LIFTA_CHECK(index >= 0, "negative kernel argument index");
  if (static_cast<std::size_t>(index) >= args_.size()) {
    args_.resize(static_cast<std::size_t>(index) + 1);
  }
}

void Kernel::setArg(int index, BufferPtr buffer) {
  // A null buffer would only surface as a null dereference at launch;
  // reject it here where the faulty argument index is still known.
  if (!buffer) {
    throw OclError("kernel '" + name_ + "' argument " +
                   std::to_string(index) + " is a null buffer");
  }
  ensureSlot(index);
  args_[static_cast<std::size_t>(index)] = std::move(buffer);
}

void Kernel::setScalar(int index, const void* src, std::size_t bytes) {
  ensureSlot(index);
  ScalarSlot slot;
  std::memcpy(slot.bytes.data(), src, bytes);
  args_[static_cast<std::size_t>(index)] = slot;
}

void Kernel::setArg(int index, int value) { setScalar(index, &value, sizeof value); }
void Kernel::setArg(int index, float value) { setScalar(index, &value, sizeof value); }
void Kernel::setArg(int index, double value) { setScalar(index, &value, sizeof value); }

// --- Context ------------------------------------------------------------------

Context::Context(DeviceProfile profile) : profile_(std::move(profile)) {
  pool_ = std::make_unique<ThreadPool>(profile_.threads);
}

ProgramPtr Context::buildProgram(const std::string& source,
                                 const std::string& buildOptions) {
  auto so = Jit::instance().compile(source, buildOptions);
  return ProgramPtr(new Program(source, std::move(so)));
}

// --- CommandQueue ----------------------------------------------------------------

Event CommandQueue::enqueueWrite(Buffer& dst, const void* src,
                                 std::size_t bytes) {
  Timer t;
  dst.write(src, bytes);
  return Event{t.milliseconds()};
}

Event CommandQueue::enqueueRead(const Buffer& src, void* dst,
                                std::size_t bytes) {
  Timer t;
  src.read(dst, bytes);
  return Event{t.milliseconds()};
}

Event CommandQueue::enqueueNDRange(Kernel& kernel, const NDRange& range) {
  // Validate the launch configuration the way an OpenCL 1.2 driver would.
  std::size_t numGroups[3];
  std::size_t wgSize = 1;
  for (int d = 0; d < 3; ++d) {
    const std::size_t g = range.global[static_cast<std::size_t>(d)];
    const std::size_t l = range.local[static_cast<std::size_t>(d)];
    if (l == 0 || g == 0 || g % l != 0) {
      throw OclError("invalid NDRange in dimension " + std::to_string(d));
    }
    numGroups[d] = g / l;
    wgSize *= l;
  }
  if (wgSize > static_cast<std::size_t>(ctx_.device().maxWorkGroupSize)) {
    throw OclError("work-group size " + std::to_string(wgSize) +
                   " exceeds device limit " +
                   std::to_string(ctx_.device().maxWorkGroupSize));
  }

  // Snapshot the argument pointers once; all work-items share them.
  std::vector<void*> args(kernel.args_.size());
  for (std::size_t i = 0; i < kernel.args_.size(); ++i) {
    auto& a = kernel.args_[i];
    if (std::holds_alternative<BufferPtr>(a)) {
      args[i] = std::get<BufferPtr>(a)->data();
    } else if (std::holds_alternative<Kernel::ScalarSlot>(a)) {
      args[i] = std::get<Kernel::ScalarSlot>(a).bytes.data();
    } else {
      throw OclError("kernel '" + kernel.name_ + "' argument " +
                     std::to_string(i) + " is unset");
    }
  }

  const std::size_t totalGroups = numGroups[0] * numGroups[1] * numGroups[2];
  const KernelEntry entry = kernel.entry_;

  Timer t;
  ctx_.pool().parallelFor(totalGroups, [&](std::size_t linearGroup) {
    WiCtx ctx;
    const std::size_t wg0 = linearGroup % numGroups[0];
    const std::size_t wg1 = (linearGroup / numGroups[0]) % numGroups[1];
    const std::size_t wg2 = linearGroup / (numGroups[0] * numGroups[1]);
    const std::size_t wg[3] = {wg0, wg1, wg2};
    for (int d = 0; d < 3; ++d) {
      ctx.gsz[d] = static_cast<long>(range.global[static_cast<std::size_t>(d)]);
      ctx.lsz[d] = static_cast<long>(range.local[static_cast<std::size_t>(d)]);
      ctx.wg[d] = static_cast<long>(wg[d]);
      ctx.nwg[d] = static_cast<long>(numGroups[d]);
    }
    // Iterate the group's work-items sequentially (barrier-free kernels).
    for (std::size_t l2 = 0; l2 < range.local[2]; ++l2) {
      for (std::size_t l1 = 0; l1 < range.local[1]; ++l1) {
        for (std::size_t l0 = 0; l0 < range.local[0]; ++l0) {
          ctx.lid[0] = static_cast<long>(l0);
          ctx.lid[1] = static_cast<long>(l1);
          ctx.lid[2] = static_cast<long>(l2);
          ctx.gid[0] = static_cast<long>(wg[0] * range.local[0] + l0);
          ctx.gid[1] = static_cast<long>(wg[1] * range.local[1] + l1);
          ctx.gid[2] = static_cast<long>(wg[2] * range.local[2] + l2);
          entry(args.data(), &ctx);
        }
      }
    }
  });
  return Event{t.milliseconds()};
}

}  // namespace lifta::ocl
