#include "ocl/compile_queue.hpp"

#include "common/error.hpp"

namespace lifta::ocl {

CompileQueue::State CompileQueue::Ticket::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

std::shared_ptr<SharedObject> CompileQueue::Ticket::object() const {
  std::lock_guard<std::mutex> lock(mu_);
  return obj_;
}

std::string CompileQueue::Ticket::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

bool CompileQueue::Ticket::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_ == State::Ready || state_ == State::Failed ||
         state_ == State::Cancelled;
}

CompileQueue& CompileQueue::instance() {
  static CompileQueue q;
  return q;
}

CompileQueue::CompileQueue() {
  // Force the Jit singleton to construct first: function-local statics are
  // destroyed in reverse construction order, so the Jit (and its scratch
  // directory) outlives the worker thread this queue joins in its own
  // destructor.
  Jit::instance();
}

CompileQueue::~CompileQueue() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

CompileQueue::TicketPtr CompileQueue::submit(const std::string& source,
                                             const std::string& extraFlags) {
  const std::string key = extraFlags + '\x1f' + source;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.submitted;
  auto it = live_.find(key);
  if (it != live_.end()) {
    ++stats_.deduped;
    return it->second;
  }
  auto t = TicketPtr(new Ticket(key, source, extraFlags));
  live_.emplace(key, t);
  queue_.push_back(t);
  if (!workerStarted_) {
    workerStarted_ = true;
    worker_ = std::thread([this] { workerLoop(); });
  }
  cv_.notify_one();
  return t;
}

bool CompileQueue::cancel(const TicketPtr& t) {
  if (!t) return false;
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> tlock(t->mu_);
    if (t->state_ != State::Pending) return false;
    t->state_ = State::Cancelled;
  }
  t->cv_.notify_all();
  live_.erase(t->key_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (*it == t) {
      queue_.erase(it);
      break;
    }
  }
  ++stats_.cancelled;
  idleCv_.notify_all();
  return true;
}

std::shared_ptr<SharedObject> CompileQueue::wait(const TicketPtr& t) {
  if (!t) return nullptr;
  std::unique_lock<std::mutex> tlock(t->mu_);
  t->cv_.wait(tlock, [&] {
    return t->state_ == State::Ready || t->state_ == State::Failed ||
           t->state_ == State::Cancelled;
  });
  return t->obj_;
}

void CompileQueue::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idleCv_.wait(lock, [&] { return liveLocked() == 0; });
}

void CompileQueue::setPaused(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = paused;
  }
  cv_.notify_all();
}

CompileQueue::Stats CompileQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t CompileQueue::liveLocked() const {
  return queue_.size() + (building_ ? 1 : 0);
}

void CompileQueue::workerLoop() {
  for (;;) {
    TicketPtr t;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return shutdown_ || (!paused_ && !queue_.empty());
      });
      if (shutdown_) return;
      t = queue_.front();
      queue_.pop_front();
      building_ = true;
      std::lock_guard<std::mutex> tlock(t->mu_);
      t->state_ = State::Building;
    }

    std::shared_ptr<SharedObject> obj;
    std::string error;
    try {
      obj = Jit::instance().compile(t->source_, t->flags_);
    } catch (const std::exception& e) {
      error = e.what();
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      live_.erase(t->key_);
      building_ = false;
      if (obj) {
        ++stats_.compiled;
      } else {
        ++stats_.failed;
      }
      std::lock_guard<std::mutex> tlock(t->mu_);
      t->state_ = obj ? State::Ready : State::Failed;
      t->obj_ = std::move(obj);
      t->error_ = std::move(error);
    }
    t->cv_.notify_all();
    idleCv_.notify_all();
  }
}

}  // namespace lifta::ocl
