// JIT compilation of generated kernel source.
//
// The simulated OpenCL runtime's clBuildProgram: kernel source (C/C++ text
// produced by src/codegen or written by hand for the baselines) is written
// to a scratch directory, compiled into a shared object with the host
// compiler, and dlopen'ed. Programs are cached by source hash so the
// 2000-iteration benchmark loops pay the compile cost once.
//
// Compilation flags deliberately exclude -march=native / fast-math: both the
// LIFT-generated and the hand-written kernels must execute the same FP
// operation sequence as the portable C++ reference so correctness tests can
// compare bitwise.
#pragma once

#include <memory>
#include <string>

namespace lifta::ocl {

/// A compiled, dlopen'ed shared object. Closed on destruction.
class SharedObject {
public:
  ~SharedObject();
  SharedObject(const SharedObject&) = delete;
  SharedObject& operator=(const SharedObject&) = delete;

  /// Looks up a symbol; throws OclError if absent.
  void* symbol(const std::string& name) const;

  /// Path of the compiled object (for diagnostics).
  const std::string& path() const { return path_; }

private:
  friend class Jit;
  SharedObject(void* handle, std::string path)
      : handle_(handle), path_(std::move(path)) {}
  void* handle_ = nullptr;
  std::string path_;
};

/// Process-wide JIT compiler with a source-hash cache.
class Jit {
public:
  static Jit& instance();

  /// Compiles `source` (if not cached) and returns the loaded object.
  /// Throws OclError with the compiler log on failure.
  std::shared_ptr<SharedObject> compile(const std::string& source);

  /// Number of distinct sources compiled so far (for tests).
  std::size_t compiledCount() const { return compiled_; }

private:
  Jit();
  std::string scratchDir_;
  std::size_t compiled_ = 0;
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace lifta::ocl
