// JIT compilation of generated kernel source.
//
// The simulated OpenCL runtime's clBuildProgram: kernel source (C/C++ text
// produced by src/codegen or written by hand for the baselines) is written
// to a scratch directory, compiled into a shared object with the host
// compiler, and dlopen'ed.
//
// Programs are content-addressed: the cache key is a structural hash of the
// compiler command, the compile flags and the full source text. Two layers
// sit in front of the compiler:
//
//   * an in-memory LRU of loaded shared objects (capacity
//     LIFTA_JIT_MEM_CACHE, default 256), so the 2000-iteration benchmark
//     loops pay the compile cost once, and
//   * an optional on-disk cache (LIFTA_JIT_CACHE_DIR or setDiskCacheDir):
//     compiled objects are copied there under their content hash and later
//     processes dlopen them directly, skipping the compiler entirely.
//
// Compilation flags deliberately exclude -march=native / fast-math: both the
// LIFT-generated and the hand-written kernels must execute the same FP
// operation sequence as the portable C++ reference so correctness tests can
// compare bitwise.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace lifta::ocl {

/// A compiled, dlopen'ed shared object. Closed on destruction.
class SharedObject {
public:
  ~SharedObject();
  SharedObject(const SharedObject&) = delete;
  SharedObject& operator=(const SharedObject&) = delete;

  /// Looks up a symbol; throws OclError if absent.
  void* symbol(const std::string& name) const;

  /// Path of the compiled object (for diagnostics).
  const std::string& path() const { return path_; }

private:
  friend class Jit;
  SharedObject(void* handle, std::string path)
      : handle_(handle), path_(std::move(path)) {}
  void* handle_ = nullptr;
  std::string path_;
};

/// Process-wide JIT compiler with a content-addressed cache.
class Jit {
public:
  static Jit& instance();

  /// Compiles `source` (if not cached in memory or on disk) and returns the
  /// loaded object. `extraFlags` is appended to the fixed flag set and is
  /// part of the cache key. Throws OclError with the compiler log on
  /// failure; no temporary files are left behind when compilation fails.
  std::shared_ptr<SharedObject> compile(const std::string& source,
                                        const std::string& extraFlags = "");

  struct Stats {
    std::size_t hits = 0;      // served from the in-memory cache
    std::size_t diskHits = 0;  // loaded from the disk cache
    std::size_t misses = 0;    // not in memory (disk hit or compile)
    std::size_t evictions = 0; // LRU evictions from the memory cache
    std::size_t compiled = 0;  // actual compiler invocations
    std::size_t corruptEvictions = 0;  // unloadable disk entries evicted
  };
  Stats stats() const;

  /// The compiler identity baked into every cache key: the compile command
  /// plus its probed `--version` banner, so upgrading (or switching) the
  /// system compiler invalidates stale objects instead of serving code the
  /// current compiler would not produce. LIFTA_CXX_VERSION overrides the
  /// probe verbatim (tests fake a compiler upgrade with it); a failed probe
  /// yields "unknown". Exposed for tests and diagnostics.
  static std::string compilerIdentity();

  /// Number of distinct sources compiled so far (for tests).
  std::size_t compiledCount() const { return stats().compiled; }

  /// Caps the in-memory LRU (minimum 1); evicts immediately if above.
  void setMemoryCacheCapacity(std::size_t n);

  /// Drops every in-memory entry (loaded objects stay alive while callers
  /// hold their shared_ptr). Does not touch the disk cache or stats.
  void clearMemoryCache();

  /// Sets (and creates) the on-disk cache directory; "" disables.
  void setDiskCacheDir(const std::string& dir);
  std::string diskCacheDir() const;

  /// Per-process scratch directory compiles run in (for tests).
  const std::string& scratchDir() const { return scratchDir_; }

private:
  Jit();
  std::string scratchDir_;
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace lifta::ocl
