#include "host/host_program.hpp"

#include "analysis/dataflow.hpp"
#include "analysis/host_lint.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "ir/typecheck.hpp"

namespace lifta::host {

namespace {
HostPtr makeNode(HOp op) {
  auto n = std::make_shared<HostNode>();
  n->op = op;
  return n;
}
}  // namespace

// --- HostProgram construction -------------------------------------------------

HostPtr HostProgram::record(HostPtr node) {
  node->id = nextId_++;
  order_.push_back(node);
  return node;
}

HostPtr HostProgram::hostParam(const std::string& name) {
  auto n = makeNode(HOp::Param);
  n->name = name;
  params_.push_back(n);
  return record(n);
}

void HostProgram::declareScalar(const std::string& name, ScalarType type) {
  scalars_[name] = type;
}

HostPtr HostProgram::toGPU(HostPtr hostValue) {
  LIFTA_CHECK(hostValue && hostValue->op == HOp::Param,
              "ToGPU expects a host parameter");
  auto n = makeNode(HOp::ToGPU);
  n->name = hostValue->name + "_g";
  n->input = std::move(hostValue);
  return record(n);
}

HostPtr HostProgram::deviceAlloc(const std::string& name) {
  auto n = makeNode(HOp::DeviceAlloc);
  n->name = name;
  return record(n);
}

HostPtr HostProgram::kernelCall(KernelSpec spec) {
  LIFTA_CHECK(spec.def.has_value() || !spec.source.empty(),
              "kernel call needs a definition or source");
  for (const auto& a : spec.args) {
    if (a.buffer == nullptr && a.scalarName.empty()) {
      throw Error("kernel argument is neither buffer nor scalar");
    }
    if (!a.scalarName.empty() && scalars_.count(a.scalarName) == 0) {
      throw Error("kernel argument references undeclared scalar '" +
                  a.scalarName + "'");
    }
  }
  LIFTA_CHECK(scalars_.count(spec.launchCountScalar) != 0,
              "launch count scalar is not declared");
  auto n = makeNode(HOp::KernelCall);
  n->name = spec.def ? spec.def->name : spec.entry;
  n->kernel = std::move(spec);
  return record(n);
}

HostPtr HostProgram::writeTo(HostPtr dest, HostPtr call) {
  LIFTA_CHECK(call && call->op == HOp::KernelCall,
              "host WriteTo wraps a kernel call");
  LIFTA_CHECK(dest != nullptr, "host WriteTo needs a destination");
  auto n = makeNode(HOp::WriteTo);
  n->name = "writeTo_" + dest->name;
  n->dest = std::move(dest);
  n->call = std::move(call);
  return record(n);
}

void HostProgram::toHost(HostPtr deviceValue, const std::string& outputName) {
  LIFTA_CHECK(deviceValue != nullptr, "ToHost needs a device value");
  auto n = makeNode(HOp::ToHost);
  n->name = outputName;
  n->input = deviceValue;
  record(n);
  outputs_.emplace_back(std::move(deviceValue), outputName);
}

// --- host code generation -------------------------------------------------------

std::string HostProgram::generateHostCode(ir::ScalarKind real) const {
  std::ostringstream out;
  out << "// generated OpenCL host code (lift-acoustics host primitives)\n";
  out << "// precision: "
      << (real == ir::ScalarKind::Double ? "double" : "float") << "\n";
  out << "cl_context ctx = ...; cl_command_queue queue = ...; // in-order\n\n";

  std::map<const HostNode*, std::string> valueName;
  for (const auto& node : order_) {
    switch (node->op) {
      case HOp::Param:
        valueName[node.get()] = node->name;
        break;

      case HOp::ToGPU:
        out << "cl_mem " << node->name << " = clCreateBuffer(ctx, bytes("
            << node->input->name << "));\n";
        out << "clEnqueueWriteBuffer(queue, " << node->name << ", "
            << node->input->name << ");\n";
        valueName[node.get()] = node->name;
        break;

      case HOp::DeviceAlloc:
        out << "cl_mem " << node->name
            << " = clCreateBuffer(ctx, bytes(" << node->name
            << ")); // uninitialized device scratch\n";
        valueName[node.get()] = node->name;
        break;

      case HOp::KernelCall: {
        const std::string kname = node->name;
        const std::string result = "out_" + std::to_string(node->id) + "_g";
        const bool generated = node->kernel.def.has_value();
        bool hasOut = false;
        if (generated) {
          // Report the allocation decision the memory allocator makes.
          auto def = *node->kernel.def;
          ir::typecheck(def.body);
          hasOut = memory::planMemory(def).hasOutBuffer;
        }
        int slot = 0;
        for (const auto& a : node->kernel.args) {
          out << kname << ".setArg(" << slot++ << ", "
              << (a.buffer ? valueName.at(a.buffer.get()) : a.scalarName)
              << ");\n";
        }
        if (hasOut) {
          out << "cl_mem " << result << " = clCreateBuffer(ctx, ...);\n";
          out << kname << ".setArg(" << slot << ", " << result << ");\n";
          valueName[node.get()] = result;
        } else {
          valueName[node.get()] = kname + "_inplace";
        }
        out << "clEnqueueNDRangeKernel(queue, " << kname << ", global="
            << node->kernel.launchCountScalar
            << ", local=" << node->kernel.localSize << ");\n";
        break;
      }

      case HOp::WriteTo: {
        // The wrapped kernel's output buffer *is* the destination buffer —
        // rendered by re-binding the out argument, no extra allocation.
        const HostNode* call = node->call.get();
        out << "// WriteTo: " << call->name << " writes into "
            << valueName.at(node->dest.get()) << " in place\n";
        valueName[node.get()] = valueName.at(node->dest.get());
        break;
      }

      case HOp::ToHost:
        out << "clEnqueueReadBuffer(queue, "
            << valueName.at(node->input.get()) << ", " << node->name
            << ");\n";
        break;
    }
  }
  return out.str();
}

// --- compilation ------------------------------------------------------------------

std::shared_ptr<CompiledHostProgram> HostProgram::compile(ocl::Context& ctx,
                                                          ir::ScalarKind real) {
  // Lint the DAG before building any kernel: catches host parameters used as
  // device values, dead compute, and unordered overlapping writes at compile
  // time instead of mid-run. The dataflow pass adds def-use reasoning over
  // buffer identities (uninitialized reads of device allocations, writes no
  // one observes, uploads a kernel fully overwrites).
  analysis::verifyHostProgram(*this);
  analysis::verifyHostDataflow(*this);
  return std::shared_ptr<CompiledHostProgram>(new CompiledHostProgram(
      *this, ctx, real, codegen::CodegenOptions::fromEnv()));
}

std::shared_ptr<CompiledHostProgram> HostProgram::compile(
    ocl::Context& ctx, ir::ScalarKind real,
    const codegen::CodegenOptions& opts) {
  analysis::verifyHostProgram(*this);
  analysis::verifyHostDataflow(*this);
  return std::shared_ptr<CompiledHostProgram>(
      new CompiledHostProgram(*this, ctx, real, opts));
}

CompiledHostProgram::CompiledHostProgram(HostProgram prog, ocl::Context& ctx,
                                         ir::ScalarKind real,
                                         const codegen::CodegenOptions& opts)
    : prog_(std::move(prog)), ctx_(ctx), real_(real) {
  // Build every kernel up front (clBuildProgram at "compile" time).
  for (const auto& node : prog_.order_) {
    if (node->op != HOp::KernelCall) continue;
    KernelInstance inst;
    inst.node = node.get();
    inst.localSize = node->kernel.localSize;
    if (node->kernel.def.has_value()) {
      auto def = *node->kernel.def;
      def.real = real_;
      codegen::CodegenOptions kopts = opts;
      if (!node->kernel.spec.empty()) kopts.spec = node->kernel.spec;
      const auto gen = codegen::generateKernel(def, kopts);
      inst.program = ctx_.buildProgram(gen.source, gen.buildFlags);
      inst.entry = gen.name;
      inst.plan = gen.plan;
      inst.generated = true;
      inst.hasOut = gen.plan.hasOutBuffer;
      inst.launchChunk = gen.preferredChunk;
      if (static_cast<std::size_t>(inst.hasOut ? 1 : 0) +
              node->kernel.args.size() !=
          gen.plan.args.size()) {
        throw Error("kernel '" + inst.entry + "' expects " +
                    std::to_string(gen.plan.args.size() -
                                   (inst.hasOut ? 1 : 0)) +
                    " arguments, got " +
                    std::to_string(node->kernel.args.size()));
      }
    } else {
      inst.program = ctx_.buildProgram(node->kernel.source);
      inst.entry = node->kernel.entry;
      inst.generated = false;
      inst.hasOut = false;
    }
    inst.kernel = std::make_unique<ocl::Kernel>(inst.program, inst.entry);
    kernels_[node.get()] = std::move(inst);
  }
}

void CompiledHostProgram::bindBuffer(const std::string& paramName,
                                     const void* data, std::size_t bytes) {
  hostInputs_[paramName] = {data, bytes};
}

void CompiledHostProgram::bindOutput(const std::string& outputName, void* data,
                                     std::size_t bytes) {
  hostOutputs_[outputName] = {data, bytes};
}

void CompiledHostProgram::bindAllocBytes(const std::string& allocName,
                                         std::size_t bytes) {
  allocBytes_[allocName] = bytes;
}

void CompiledHostProgram::setInt(const std::string& name, int value) {
  ints_[name] = value;
}

void CompiledHostProgram::setReal(const std::string& name, double value) {
  reals_[name] = value;
}

ocl::BufferPtr CompiledHostProgram::deviceBuffer(const HostPtr& node) const {
  auto it = deviceBuffers_.find(node.get());
  if (it == deviceBuffers_.end()) {
    throw Error("node '" + node->name + "' has no device buffer yet");
  }
  return it->second;
}

void CompiledHostProgram::setDeviceBuffer(const HostPtr& node,
                                          ocl::BufferPtr buffer) {
  deviceBuffers_[node.get()] = std::move(buffer);
}

CompiledHostProgram::KernelInstance& CompiledHostProgram::instanceFor(
    const HostPtr& node) {
  const HostNode* k = (node && node->op == HOp::WriteTo) ? node->call.get()
                                                         : node.get();
  auto it = kernels_.find(k);
  if (it == kernels_.end()) {
    throw Error("node '" + (node ? node->name : std::string("<null>")) +
                "' is not a kernel call");
  }
  return it->second;
}

const CompiledHostProgram::KernelInstance& CompiledHostProgram::instanceFor(
    const HostPtr& node) const {
  return const_cast<CompiledHostProgram*>(this)->instanceFor(node);
}

void CompiledHostProgram::setLocalSize(const HostPtr& node,
                                       std::size_t local) {
  LIFTA_CHECK(local > 0, "local size must be positive");
  instanceFor(node).localSize = local;
}

std::size_t CompiledHostProgram::localSize(const HostPtr& node) const {
  return instanceFor(node).localSize;
}

void CompiledHostProgram::replaceKernelProgram(
    const HostPtr& node, const codegen::GeneratedKernel& gen,
    ocl::ProgramPtr program) {
  KernelInstance& inst = instanceFor(node);
  LIFTA_CHECK(inst.generated,
              "hot-swap targets generated kernels only (handwritten kernels "
              "have no memory plan to check against)");
  // ABI compatibility: every argument slot the launch code binds must mean
  // the same thing in the replacement. Specialized kernels keep the full
  // plan (baked scalars are unpacked but unused), so this is an equality
  // check, not a remapping.
  LIFTA_CHECK(gen.plan.args.size() == inst.plan.args.size() &&
                  gen.plan.hasOutBuffer == inst.plan.hasOutBuffer,
              "hot-swap replacement for '" + inst.entry +
                  "' has an incompatible memory plan");
  inst.kernel = std::make_unique<ocl::Kernel>(program, gen.name);
  inst.program = std::move(program);
  inst.entry = gen.name;
  inst.launchChunk = gen.preferredChunk;
  // localSize (possibly autotuned) and all bound buffers/scalars carry
  // over; evalDevice re-binds every argument each run, so the swap is
  // complete at the next step boundary.
}

ocl::BufferPtr CompiledHostProgram::evalDevice(const HostPtr& node,
                                               bool skipUploads,
                                               RunStats& stats) {
  // Each node is evaluated at most once per run: Listing 5's next_g is both
  // the WriteTo destination and a boundary-kernel argument, and must launch
  // the volume kernel exactly once.
  if (memo_.count(node.get()) != 0) return memo_[node.get()];
  auto cached = deviceBuffers_.find(node.get());

  switch (node->op) {
    case HOp::Param:
      throw Error("host parameter '" + node->name +
                  "' used directly as a device value; wrap it in ToGPU");

    case HOp::ToGPU: {
      auto it = hostInputs_.find(node->input->name);
      if (it == hostInputs_.end()) {
        throw Error("host parameter '" + node->input->name + "' not bound");
      }
      const auto [data, bytes] = it->second;
      ocl::BufferPtr buf;
      if (cached != deviceBuffers_.end() &&
          cached->second->size() == bytes) {
        buf = cached->second;
      } else {
        buf = ctx_.allocate(bytes);
        deviceBuffers_[node.get()] = buf;
      }
      if (!skipUploads) {
        ocl::CommandQueue q(ctx_);
        stats.transferMs += q.enqueueWrite(*buf, data, bytes).milliseconds;
      }
      memo_[node.get()] = buf;
      return buf;
    }

    case HOp::DeviceAlloc: {
      auto it = allocBytes_.find(node->name);
      if (it == allocBytes_.end()) {
        throw Error("device allocation '" + node->name +
                    "' not sized; call bindAllocBytes");
      }
      const std::size_t bytes = it->second;
      ocl::BufferPtr buf;
      if (cached != deviceBuffers_.end() && cached->second->size() == bytes) {
        buf = cached->second;
      } else {
        buf = ctx_.allocate(bytes);
        deviceBuffers_[node.get()] = buf;
      }
      memo_[node.get()] = buf;
      return buf;
    }

    case HOp::KernelCall: {
      auto& inst = kernels_.at(node.get());
      ocl::CommandQueue q(ctx_);
      int slot = 0;
      for (const auto& a : node->kernel.args) {
        if (a.buffer) {
          inst.kernel->setArg(slot, evalDevice(a.buffer, skipUploads, stats));
        } else {
          // Scalar: use the declared type (and kernel precision for reals).
          const ScalarType st = prog_.scalars_.at(a.scalarName);
          if (st == ScalarType::Int) {
            auto it = ints_.find(a.scalarName);
            if (it == ints_.end()) {
              throw Error("int scalar '" + a.scalarName + "' not set");
            }
            inst.kernel->setArg(slot, it->second);
          } else {
            auto it = reals_.find(a.scalarName);
            if (it == reals_.end()) {
              throw Error("real scalar '" + a.scalarName + "' not set");
            }
            if (real_ == ir::ScalarKind::Double) {
              inst.kernel->setArg(slot, it->second);
            } else {
              inst.kernel->setArg(slot, static_cast<float>(it->second));
            }
          }
        }
        ++slot;
      }
      if (inst.hasOut) {
        ocl::BufferPtr out = inst.aliasOut;
        if (!out) {
          // Allocate the fresh output from the body's symbolic size, using
          // the bound scalar values as the environment.
          std::map<std::string, std::int64_t> env;
          for (const auto& [k, v] : ints_) env[k] = v;
          const auto count = inst.plan.outType->flatCount().evaluate(env);
          const std::size_t elem =
              real_ == ir::ScalarKind::Double ? sizeof(double) : sizeof(float);
          const std::size_t bytes = static_cast<std::size_t>(count) * elem;
          if (cached != deviceBuffers_.end() &&
              cached->second->size() == bytes) {
            out = cached->second;
          } else {
            out = ctx_.allocate(bytes);
          }
        }
        inst.kernel->setArg(slot, out);
        deviceBuffers_[node.get()] = out;
      }
      const auto n = static_cast<std::size_t>(
          ints_.at(node->kernel.launchCountScalar));
      const std::size_t local = inst.localSize;
      // Chunk-scheduled kernels cover [0, n) themselves under any launch
      // geometry; shrink the launch to ~n/chunk items (256-item floor for
      // parallel slack) to cut per-work-item dispatch overhead.
      std::size_t items = n;
      if (inst.launchChunk > 0) {
        const auto chunk = static_cast<std::size_t>(inst.launchChunk);
        items = (n + chunk - 1) / chunk;
        if (items < 256) items = 256;
        if (items > n) items = n;
      }
      std::size_t global = (items + local - 1) / local * local;
      if (global > node->kernel.maxGlobal) {
        global = node->kernel.maxGlobal / local * local;
      }
      if (global == 0) global = local;
      const auto ev =
          q.enqueueNDRange(*inst.kernel, ocl::NDRange::linear(global, local));
      stats.kernels.emplace_back(inst.entry, ev.milliseconds);
      inst.aliasOut = nullptr;  // reset per run
      if (!inst.hasOut) {
        // Effect-only kernel: its "value" is its first written buffer — by
        // convention the in-place destination bound by a host WriteTo.
        memo_[node.get()] = nullptr;
        return nullptr;
      }
      memo_[node.get()] = deviceBuffers_.at(node.get());
      return memo_[node.get()];
    }

    case HOp::WriteTo: {
      auto dest = evalDevice(node->dest, skipUploads, stats);
      auto& inst = kernels_.at(node->call.get());
      if (inst.hasOut) {
        inst.aliasOut = dest;  // redirect output into the destination
      }
      evalDevice(node->call, skipUploads, stats);
      deviceBuffers_[node.get()] = dest;
      memo_[node.get()] = dest;
      return dest;
    }

    case HOp::ToHost:
      return evalDevice(node->input, skipUploads, stats);
  }
  throw Error("unreachable host node");
}

CompiledHostProgram::RunStats CompiledHostProgram::run(bool skipUploads) {
  RunStats stats;
  memo_.clear();
  for (const auto& [node, outputName] : prog_.outputs_) {
    auto buf = evalDevice(node, skipUploads, stats);
    auto it = hostOutputs_.find(outputName);
    if (it == hostOutputs_.end()) {
      throw Error("output '" + outputName + "' not bound");
    }
    if (buf == nullptr) {
      throw Error("output '" + outputName + "' has no device buffer");
    }
    auto [data, bytes] = it->second;
    ocl::CommandQueue q(ctx_);
    stats.transferMs += q.enqueueRead(*buf, data, bytes).milliseconds;
  }
  return stats;
}

}  // namespace lifta::host
