// Host-side LIFT primitives and host code generation (paper §IV-A, §V-A).
//
// The paper extends LIFT so that the *host* program — buffer transfers,
// kernel-argument binding, multi-kernel scheduling, and in-place output
// aliasing — is expressed with four primitives and generated, not written:
//
//   OclKernel(f, args...)  -> kernelCall(...)   launch a device kernel
//   ToGPU(x)               -> toGPU(...)        host-to-device transfer
//   ToHost(x)              -> toHost(...)       device-to-host transfer
//   WriteTo(dst, k)        -> writeTo(...)      kernel output lands in dst
//
// A HostProgram is the expression DAG built from these primitives
// (Listing 5 is the canonical example). It can:
//   * generate readable OpenCL host code (generateHostCode) matching the
//     "Generated code" column of Table I, and
//   * compile into an executable schedule over the simulated OpenCL
//     runtime, with per-kernel profiling events — which is how the
//     benchmarks drive the LIFT path end to end.
//
// Because the queue is in-order, a kernel consuming another kernel's output
// is implicitly synchronized, exactly as §V-A describes.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codegen/kernel_codegen.hpp"
#include "memory/kernel_def.hpp"
#include "ocl/runtime.hpp"

namespace lifta::host {

struct HostNode;
using HostPtr = std::shared_ptr<HostNode>;

enum class HOp { Param, ToGPU, ToHost, KernelCall, WriteTo, DeviceAlloc };

/// One device-kernel invocation inside the host program.
struct KernelSpec {
  /// Generated path: LIFT IR kernel definition (compiled via src/codegen).
  std::optional<memory::KernelDef> def;
  /// Handwritten path: raw source + entry name + positional arg count.
  std::string source;
  std::string entry;

  /// Arguments in the kernel's ABI slot order, excluding the implicit
  /// output buffer: either a device-value node or the name of a declared
  /// scalar.
  struct Arg {
    HostPtr buffer;          // device value (ToGPU / KernelCall / WriteTo)
    std::string scalarName;  // or: declared scalar
  };
  std::vector<Arg> args;

  /// Launch size: the name of a declared int scalar holding the logical
  /// element count (grid-stride kernels tolerate any cap).
  std::string launchCountScalar;
  std::size_t localSize = 64;
  std::size_t maxGlobal = 1u << 16;

  /// Per-call constant specialization (generated path only): when
  /// non-empty it overrides CodegenOptions::spec for this kernel, so one
  /// host program can bake different constants into different calls (e.g.
  /// per-launch boundary counts that share a kernel parameter name). The
  /// named scalars must still be declared and set — the launch code binds
  /// every ABI slot regardless, which is what keeps hot-swap possible.
  memory::Specialization spec;
};

struct HostNode {
  HOp op = HOp::Param;
  std::string name;      // Param: host buffer name; also used for labels
  HostPtr input;         // ToGPU / ToHost child
  HostPtr dest;          // WriteTo destination
  HostPtr call;          // WriteTo kernel call
  KernelSpec kernel;     // KernelCall
  int id = 0;            // stable id for codegen labels
};

enum class ScalarType { Int, Real };

class CompiledHostProgram;

class HostProgram {
public:
  /// Declares a host-memory input (bound to a pointer at run time).
  HostPtr hostParam(const std::string& name);
  /// Declares a scalar kernel argument.
  void declareScalar(const std::string& name, ScalarType type);

  HostPtr toGPU(HostPtr hostValue);
  /// Declares an uninitialized device scratch buffer (no host source, no
  /// upload). Size it at run time with CompiledHostProgram::bindAllocBytes.
  /// Use instead of toGPU when a kernel fully overwrites the buffer before
  /// any read — the dataflow lint flags uploads that only feed such writes.
  HostPtr deviceAlloc(const std::string& name);
  HostPtr kernelCall(KernelSpec spec);
  /// Host-level WriteTo: the kernel writes its output into `dest`'s buffer
  /// (suppressing any fresh output allocation), and the expression's value
  /// is that same buffer.
  HostPtr writeTo(HostPtr dest, HostPtr call);
  /// Marks a device value as a program output, copied back at the end of
  /// each run into the host pointer bound under `outputName`.
  void toHost(HostPtr deviceValue, const std::string& outputName);

  /// Readable generated host code (clCreateBuffer / enqueueWriteBuffer /
  /// setArg / enqueueNDRangeKernel / enqueueReadBuffer sequence).
  std::string generateHostCode(ir::ScalarKind real) const;

  /// Builds all kernels and allocates the schedule against a context.
  /// Runs the host-program lint first (src/analysis/host_lint) and throws
  /// AnalysisError on error-severity findings unless LIFTA_SKIP_VERIFY is
  /// set.
  std::shared_ptr<CompiledHostProgram> compile(ocl::Context& ctx,
                                               ir::ScalarKind real);

  /// As above with explicit codegen options for the generated kernels —
  /// the hook tiered execution uses to build a fully constant-specialized
  /// program (CodegenOptions::spec) instead of the generic one.
  std::shared_ptr<CompiledHostProgram> compile(
      ocl::Context& ctx, ir::ScalarKind real,
      const codegen::CodegenOptions& opts);

  /// Read-only views of the DAG for static analysis and tooling.
  const std::vector<HostPtr>& nodes() const { return order_; }
  const std::vector<std::pair<HostPtr, std::string>>& outputs() const {
    return outputs_;
  }
  const std::map<std::string, ScalarType>& scalarDecls() const {
    return scalars_;
  }

private:
  friend class CompiledHostProgram;
  std::vector<HostPtr> params_;
  std::map<std::string, ScalarType> scalars_;
  std::vector<std::pair<HostPtr, std::string>> outputs_;
  std::vector<HostPtr> order_;  // creation order (topological by construction)
  int nextId_ = 0;

  HostPtr record(HostPtr node);
};

/// The executable schedule. Bind inputs/outputs/scalars, then run().
class CompiledHostProgram {
public:
  void bindBuffer(const std::string& paramName, const void* data,
                  std::size_t bytes);
  void bindOutput(const std::string& outputName, void* data,
                  std::size_t bytes);
  /// Sizes a deviceAlloc(...) scratch buffer (by its declared name).
  void bindAllocBytes(const std::string& allocName, std::size_t bytes);
  void setInt(const std::string& name, int value);
  void setReal(const std::string& name, double value);

  struct RunStats {
    /// (kernel entry name, event milliseconds) per launch, in order.
    std::vector<std::pair<std::string, double>> kernels;
    double transferMs = 0.0;
  };

  /// Executes the whole schedule. With skipUploads, ToGPU copies are
  /// elided (device buffers keep their previous contents) — used by
  /// iterative time stepping after the first run.
  RunStats run(bool skipUploads = false);

  /// Device buffer behind a ToGPU/KernelCall/WriteTo node (for rotation in
  /// time-stepping drivers).
  ocl::BufferPtr deviceBuffer(const HostPtr& node) const;
  /// Replaces the buffer behind a node (e.g. prev/curr rotation).
  void setDeviceBuffer(const HostPtr& node, ocl::BufferPtr buffer);

  /// Overrides the work-group size of one kernel call (accepts the
  /// KernelCall node or a WriteTo wrapping it) — the hook the autotuner
  /// drives. The KernelSpec default applies until this is called.
  void setLocalSize(const HostPtr& node, std::size_t local);
  std::size_t localSize(const HostPtr& node) const;

  /// Hot-swaps the compiled program behind one generated kernel call
  /// (KernelCall node or WriteTo wrapping it) — the tiered-execution
  /// upgrade path. The replacement must share the original's ABI (same
  /// memory plan and output convention; enforced); buffers, bound scalars
  /// and any setLocalSize override carry over untouched, so the next run()
  /// picks up the new code at a step boundary with bit-identical state.
  void replaceKernelProgram(const HostPtr& node,
                            const codegen::GeneratedKernel& gen,
                            ocl::ProgramPtr program);

private:
  friend class HostProgram;
  struct KernelInstance {
    ocl::ProgramPtr program;
    std::unique_ptr<ocl::Kernel> kernel;
    std::string entry;
    const HostNode* node = nullptr;
    memory::MemoryPlan plan;   // generated kernels only
    bool generated = false;
    bool hasOut = false;
    std::size_t localSize = 64;  // spec default; setLocalSize overrides
    int launchChunk = 0;         // GeneratedKernel::preferredChunk
    ocl::BufferPtr outBuffer;  // fresh output (when !aliased)
    ocl::BufferPtr aliasOut;   // host WriteTo destination buffer
  };

  KernelInstance& instanceFor(const HostPtr& node);
  const KernelInstance& instanceFor(const HostPtr& node) const;

  CompiledHostProgram(HostProgram prog, ocl::Context& ctx, ir::ScalarKind real,
                      const codegen::CodegenOptions& opts);

  ocl::BufferPtr evalDevice(const HostPtr& node, bool skipUploads,
                            RunStats& stats);

  HostProgram prog_;
  ocl::Context& ctx_;
  ir::ScalarKind real_;
  std::map<std::string, std::pair<const void*, std::size_t>> hostInputs_;
  std::map<std::string, std::pair<void*, std::size_t>> hostOutputs_;
  std::map<std::string, int> ints_;
  std::map<std::string, double> reals_;
  std::map<std::string, std::size_t> allocBytes_;
  std::map<const HostNode*, ocl::BufferPtr> deviceBuffers_;
  std::map<const HostNode*, ocl::BufferPtr> memo_;  // per-run evaluation memo
  std::map<const HostNode*, KernelInstance> kernels_;
};

}  // namespace lifta::host
