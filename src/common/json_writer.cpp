#include "common/json_writer.hpp"

#include <cmath>
#include <fstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace lifta {

namespace {

/// Length of the valid UTF-8 sequence starting at bytes[i] (RFC 3629:
/// continuation ranges, no overlong encodings, no surrogates, max U+10FFFF).
/// Returns 0 when the byte does not start a valid sequence.
std::size_t utf8SequenceLength(const unsigned char* bytes, std::size_t i,
                               std::size_t n) {
  const unsigned char c = bytes[i];
  std::size_t len;
  unsigned char lo2 = 0x80, hi2 = 0xBF;  // allowed range of the second byte
  if (c >= 0xC2 && c <= 0xDF) {
    len = 2;
  } else if (c >= 0xE0 && c <= 0xEF) {
    len = 3;
    if (c == 0xE0) lo2 = 0xA0;  // overlong
    if (c == 0xED) hi2 = 0x9F;  // surrogates
  } else if (c >= 0xF0 && c <= 0xF4) {
    len = 4;
    if (c == 0xF0) lo2 = 0x90;  // overlong
    if (c == 0xF4) hi2 = 0x8F;  // beyond U+10FFFF
  } else {
    return 0;  // lone continuation byte, 0xC0/0xC1, or 0xF5..0xFF
  }
  if (i + len > n) return 0;
  if (bytes[i + 1] < lo2 || bytes[i + 1] > hi2) return 0;
  for (std::size_t k = 2; k < len; ++k) {
    if (bytes[i + k] < 0x80 || bytes[i + k] > 0xBF) return 0;
  }
  return len;
}

}  // namespace

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  const auto* bytes = reinterpret_cast<const unsigned char*>(raw.data());
  const std::size_t n = raw.size();
  for (std::size_t i = 0; i < n;) {
    const unsigned char c = bytes[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      case '\b': out += "\\b"; ++i; continue;
      case '\f': out += "\\f"; ++i; continue;
      default: break;
    }
    if (c < 0x20 || c == 0x7F) {  // control characters incl. DEL
      out += strformat("\\u%04x", c);
      ++i;
      continue;
    }
    if (c < 0x80) {  // printable ASCII
      out += static_cast<char>(c);
      ++i;
      continue;
    }
    // Non-ASCII: valid UTF-8 sequences pass through verbatim (JSON strings
    // are UTF-8); anything else would corrupt the whole document, so each
    // invalid byte is replaced with U+FFFD.
    const std::size_t len = utf8SequenceLength(bytes, i, n);
    if (len == 0) {
      out += "\\ufffd";
      ++i;
    } else {
      out.append(raw, i, len);
      i += len;
    }
  }
  return out;
}

void JsonWriter::indentLine() {
  out_ += '\n';
  out_.append(2 * scopes_.size(), ' ');
}

void JsonWriter::beginValue() {
  LIFTA_CHECK(!done_, "JsonWriter: document already complete");
  if (scopes_.empty()) return;  // the top-level value itself
  if (scopes_.back() == Scope::Object) {
    LIFTA_CHECK(keyPending_, "JsonWriter: object value needs a key() first");
    keyPending_ = false;
    return;  // key() already placed the comma and indentation
  }
  if (!scopeEmpty_) out_ += ',';
  indentLine();
  scopeEmpty_ = false;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  LIFTA_CHECK(!scopes_.empty() && scopes_.back() == Scope::Object,
              "JsonWriter: key() outside an object");
  LIFTA_CHECK(!keyPending_, "JsonWriter: key() twice without a value");
  if (!scopeEmpty_) out_ += ',';
  indentLine();
  out_ += '"';
  out_ += escape(name);
  out_ += "\": ";
  scopeEmpty_ = false;
  keyPending_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginObject() {
  beginValue();
  out_ += '{';
  scopes_.push_back(Scope::Object);
  scopeEmpty_ = true;
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  LIFTA_CHECK(!scopes_.empty() && scopes_.back() == Scope::Object,
              "JsonWriter: endObject() without beginObject()");
  LIFTA_CHECK(!keyPending_, "JsonWriter: key() without a value");
  const bool wasEmpty = scopeEmpty_;
  scopes_.pop_back();
  if (!wasEmpty) indentLine();
  out_ += '}';
  scopeEmpty_ = false;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beginValue();
  out_ += '[';
  scopes_.push_back(Scope::Array);
  scopeEmpty_ = true;
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  LIFTA_CHECK(!scopes_.empty() && scopes_.back() == Scope::Array,
              "JsonWriter: endArray() without beginArray()");
  const bool wasEmpty = scopeEmpty_;
  scopes_.pop_back();
  if (!wasEmpty) indentLine();
  out_ += ']';
  scopeEmpty_ = false;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  beginValue();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v, int decimals) {
  if (!std::isfinite(v)) return nullValue();
  beginValue();
  out_ += strformat("%.*f", decimals, v);
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beginValue();
  out_ += strformat("%lld", static_cast<long long>(v));
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beginValue();
  out_ += strformat("%llu", static_cast<unsigned long long>(v));
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beginValue();
  out_ += v ? "true" : "false";
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::nullValue() {
  beginValue();
  out_ += "null";
  if (scopes_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  LIFTA_CHECK(done_ && scopes_.empty(),
              "JsonWriter: document incomplete (unclosed scope or no value)");
  return out_;
}

void JsonWriter::writeFile(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw Error("cannot open for writing: " + path);
  f << str() << '\n';
  f.flush();
  if (!f) throw Error("write failed: " + path);
}

}  // namespace lifta
