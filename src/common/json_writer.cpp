#include "common/json_writer.hpp"

#include <cmath>
#include <fstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace lifta {

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::indentLine() {
  out_ += '\n';
  out_.append(2 * scopes_.size(), ' ');
}

void JsonWriter::beginValue() {
  LIFTA_CHECK(!done_, "JsonWriter: document already complete");
  if (scopes_.empty()) return;  // the top-level value itself
  if (scopes_.back() == Scope::Object) {
    LIFTA_CHECK(keyPending_, "JsonWriter: object value needs a key() first");
    keyPending_ = false;
    return;  // key() already placed the comma and indentation
  }
  if (!scopeEmpty_) out_ += ',';
  indentLine();
  scopeEmpty_ = false;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  LIFTA_CHECK(!scopes_.empty() && scopes_.back() == Scope::Object,
              "JsonWriter: key() outside an object");
  LIFTA_CHECK(!keyPending_, "JsonWriter: key() twice without a value");
  if (!scopeEmpty_) out_ += ',';
  indentLine();
  out_ += '"';
  out_ += escape(name);
  out_ += "\": ";
  scopeEmpty_ = false;
  keyPending_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginObject() {
  beginValue();
  out_ += '{';
  scopes_.push_back(Scope::Object);
  scopeEmpty_ = true;
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  LIFTA_CHECK(!scopes_.empty() && scopes_.back() == Scope::Object,
              "JsonWriter: endObject() without beginObject()");
  LIFTA_CHECK(!keyPending_, "JsonWriter: key() without a value");
  const bool wasEmpty = scopeEmpty_;
  scopes_.pop_back();
  if (!wasEmpty) indentLine();
  out_ += '}';
  scopeEmpty_ = false;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beginValue();
  out_ += '[';
  scopes_.push_back(Scope::Array);
  scopeEmpty_ = true;
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  LIFTA_CHECK(!scopes_.empty() && scopes_.back() == Scope::Array,
              "JsonWriter: endArray() without beginArray()");
  const bool wasEmpty = scopeEmpty_;
  scopes_.pop_back();
  if (!wasEmpty) indentLine();
  out_ += ']';
  scopeEmpty_ = false;
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  beginValue();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string(v));
}

JsonWriter& JsonWriter::value(double v, int decimals) {
  if (!std::isfinite(v)) return nullValue();
  beginValue();
  out_ += strformat("%.*f", decimals, v);
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beginValue();
  out_ += strformat("%lld", static_cast<long long>(v));
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beginValue();
  out_ += strformat("%llu", static_cast<unsigned long long>(v));
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beginValue();
  out_ += v ? "true" : "false";
  if (scopes_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::nullValue() {
  beginValue();
  out_ += "null";
  if (scopes_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  LIFTA_CHECK(done_ && scopes_.empty(),
              "JsonWriter: document incomplete (unclosed scope or no value)");
  return out_;
}

void JsonWriter::writeFile(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw Error("cannot open for writing: " + path);
  f << str() << '\n';
  f.flush();
  if (!f) throw Error("write failed: " + path);
}

}  // namespace lifta
