// Cache-line / SIMD aligned heap buffer used for simulation grids and the
// simulated OpenCL device memory. Unlike std::vector it guarantees a 64-byte
// alignment and supports explicit value-initialization control (grids are
// large; callers often fill them immediately).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/error.hpp"

namespace lifta {

inline constexpr std::size_t kBufferAlignment = 64;

/// Owning, 64-byte aligned, fixed-capacity byte buffer.
class AlignedBuffer {
public:
  AlignedBuffer() = default;

  /// Allocates `bytes` bytes; zero-fills when `zero` is true.
  explicit AlignedBuffer(std::size_t bytes, bool zero = true) { reset(bytes, zero); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      free();
      swap(other);
    }
    return *this;
  }

  ~AlignedBuffer() { free(); }

  /// Re-allocates to `bytes` bytes, discarding previous contents.
  void reset(std::size_t bytes, bool zero = true) {
    free();
    if (bytes == 0) return;
    // Round up so the allocation size is a multiple of the alignment, as
    // required by std::aligned_alloc.
    const std::size_t rounded =
        (bytes + kBufferAlignment - 1) / kBufferAlignment * kBufferAlignment;
    data_ = std::aligned_alloc(kBufferAlignment, rounded);
    if (data_ == nullptr) throw std::bad_alloc();
    bytes_ = bytes;
    if (zero) std::memset(data_, 0, rounded);
  }

  void* data() noexcept { return data_; }
  const void* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return bytes_; }
  bool empty() const noexcept { return bytes_ == 0; }

  template <typename T>
  T* as() noexcept { return static_cast<T*>(data_); }
  template <typename T>
  const T* as() const noexcept { return static_cast<const T*>(data_); }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(bytes_, other.bytes_);
  }

private:
  void free() noexcept {
    std::free(data_);
    data_ = nullptr;
    bytes_ = 0;
  }

  void* data_ = nullptr;
  std::size_t bytes_ = 0;
};

/// Typed aligned array with size in elements. Thin wrapper over AlignedBuffer.
template <typename T>
class AlignedArray {
public:
  AlignedArray() = default;
  explicit AlignedArray(std::size_t n, bool zero = true)
      : buf_(n * sizeof(T), zero), n_(n) {}

  void reset(std::size_t n, bool zero = true) {
    buf_.reset(n * sizeof(T), zero);
    n_ = n;
  }

  T* data() noexcept { return buf_.as<T>(); }
  const T* data() const noexcept { return buf_.as<T>(); }
  std::size_t size() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }

  T& operator[](std::size_t i) noexcept { return data()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data()[i]; }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + n_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + n_; }

  void fill(const T& v) {
    for (std::size_t i = 0; i < n_; ++i) data()[i] = v;
  }

private:
  AlignedBuffer buf_;
  std::size_t n_ = 0;
};

}  // namespace lifta
