// Small streaming JSON writer shared by the benchmark outputs
// (BENCH_refstep.json, BENCH_service.json) and the RIR job-service metrics
// export, replacing per-bench hand-rolled fprintf emission. Produces
// pretty-printed, valid JSON: string escaping, comma placement and
// object/array nesting are handled here; callers only describe structure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lifta {

class JsonWriter {
public:
  /// Structure. A document is one top-level value (usually beginObject ..
  /// endObject); inside objects every value must be preceded by key().
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();
  JsonWriter& key(const std::string& name);

  /// Values. Doubles print with fixed `decimals` digits (matching the
  /// bench outputs' stable formatting); NaN/Inf become null, which JSON
  /// cannot represent as numbers.
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v, int decimals = 6);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& nullValue();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    return key(name).value(v);
  }
  JsonWriter& field(const std::string& name, double v, int decimals) {
    return key(name).value(v, decimals);
  }

  /// The finished document. Throws lifta::Error if any scope is still open
  /// or no value was written.
  const std::string& str() const;

  /// str() written to `path` with a trailing newline. Throws lifta::Error
  /// on I/O failure.
  void writeFile(const std::string& path) const;

  /// JSON string escaping (quotes not included), exposed for tests.
  static std::string escape(const std::string& raw);

private:
  enum class Scope { Object, Array };

  void beginValue();  // comma/newline/indent bookkeeping before any value
  void indentLine();

  std::string out_;
  std::vector<Scope> scopes_;
  bool scopeEmpty_ = true;   // current scope has no entries yet
  bool keyPending_ = false;  // key() emitted, awaiting its value
  bool done_ = false;        // a complete top-level value exists
};

}  // namespace lifta
