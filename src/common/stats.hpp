// Timing and summary statistics used by the benchmark harness. The paper
// reports the median of 2000 kernel executions measured via the OpenCL
// profiling API; `SampleStats` reproduces median/mean/stddev/min/max
// bookkeeping for such sample sets.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lifta {

/// Monotonic wall-clock timer with microsecond-ish resolution.
class Timer {
public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double milliseconds() const { return seconds() * 1e3; }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Nanoseconds of CPU time consumed by the *calling thread* so far
/// (CLOCK_THREAD_CPUTIME_ID on Linux; wall clock elsewhere). Differences of
/// this value attribute work to a phase regardless of how tasks from
/// overlapping pipeline steps interleave on the cores — which wall-clock
/// intervals cannot, once the task-graph stepper overlaps adjacent steps.
std::uint64_t threadCpuTimeNs();

/// Summary statistics over a sample set (e.g. per-iteration kernel times).
struct SampleStats {
  double median = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Computes summary statistics. The input vector is copied (it must be
/// partially sorted to find the median).
SampleStats summarize(std::vector<double> samples);

/// Median convenience wrapper.
double median(std::vector<double> samples);

/// Fixed-width-bin histogram over [lo, hi]; out-of-range samples are clamped
/// into the first/last bin. Used by the step profiler to show the shape of
/// per-kernel time distributions, not just their summary statistics.
class Histogram {
public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Builds a histogram spanning [min, max] of the samples.
  static Histogram fromSamples(const std::vector<double>& samples,
                               std::size_t bins = 16);

  void record(double value);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t binCount(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  /// Inclusive lower edge of `bin`.
  double binLo(std::size_t bin) const;

  /// ASCII rendering, one `[lo, hi) count |####|` line per non-empty bin.
  std::string render(int barWidth = 32) const;

private:
  double lo_ = 0.0;
  double hi_ = 1.0;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace lifta
