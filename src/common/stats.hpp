// Timing and summary statistics used by the benchmark harness. The paper
// reports the median of 2000 kernel executions measured via the OpenCL
// profiling API; `SampleStats` reproduces median/mean/stddev/min/max
// bookkeeping for such sample sets.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

namespace lifta {

/// Monotonic wall-clock timer with microsecond-ish resolution.
class Timer {
public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double milliseconds() const { return seconds() * 1e3; }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Summary statistics over a sample set (e.g. per-iteration kernel times).
struct SampleStats {
  double median = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Computes summary statistics. The input vector is copied (it must be
/// partially sorted to find the median).
SampleStats summarize(std::vector<double> samples);

/// Median convenience wrapper.
double median(std::vector<double> samples);

}  // namespace lifta
