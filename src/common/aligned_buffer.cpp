// AlignedBuffer is header-only; this translation unit exists so the library
// has at least one object file per header group and to hold explicit
// instantiations of the most common element types (keeps template code out of
// every client TU).
#include "common/aligned_buffer.hpp"

namespace lifta {

template class AlignedArray<float>;
template class AlignedArray<double>;
template class AlignedArray<int>;

}  // namespace lifta
