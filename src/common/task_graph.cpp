#include "common/task_graph.hpp"

#include "common/error.hpp"

namespace lifta {

TaskGraph::TaskId TaskGraph::add(std::function<void()> body) {
  LIFTA_CHECK(body != nullptr, "TaskGraph::add: body must be callable");
  const TaskId id = static_cast<TaskId>(nodes_.size());
  nodes_.emplace_back();
  nodes_.back().body = std::move(body);
  return id;
}

void TaskGraph::addEdge(TaskId before, TaskId after) {
  LIFTA_CHECK(after < nodes_.size(), "TaskGraph::addEdge: unknown task id");
  // Creation order is the topological order; forbidding back/self edges makes
  // cycles impossible by construction.
  LIFTA_CHECK(before < after,
              "TaskGraph::addEdge: edges must go from an earlier task to a "
              "later one");
  nodes_[before].successors.push_back(after);
  ++nodes_[after].numPredecessors;
  ++edges_;
}

}  // namespace lifta
