#include "common/wav.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "common/error.hpp"

namespace lifta {
namespace {

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v & 0xffff));
  put16(out, static_cast<std::uint16_t>(v >> 16));
}

void putTag(std::vector<std::uint8_t>& out, const char* tag) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(tag[i]));
}

}  // namespace

void writeWav(const std::string& path, const std::vector<double>& samples,
              int sampleRateHz) {
  const std::uint32_t dataBytes = static_cast<std::uint32_t>(samples.size() * 2);
  std::vector<std::uint8_t> out;
  out.reserve(44 + dataBytes);
  putTag(out, "RIFF");
  put32(out, 36 + dataBytes);
  putTag(out, "WAVE");
  putTag(out, "fmt ");
  put32(out, 16);                 // PCM fmt chunk size
  put16(out, 1);                  // PCM
  put16(out, 1);                  // mono
  put32(out, static_cast<std::uint32_t>(sampleRateHz));
  put32(out, static_cast<std::uint32_t>(sampleRateHz * 2));  // byte rate
  put16(out, 2);                  // block align
  put16(out, 16);                 // bits per sample
  putTag(out, "data");
  put32(out, dataBytes);
  for (double s : samples) {
    const double clamped = std::clamp(s, -1.0, 1.0);
    const auto q = static_cast<std::int16_t>(std::lrint(clamped * 32767.0));
    put16(out, static_cast<std::uint16_t>(q));
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw Error("cannot open for writing: " + path);
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (written != out.size()) throw Error("short write: " + path);
}

WavData readWav(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw Error("cannot open for reading: " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  std::fclose(f);

  const auto need = [&](std::size_t at, std::size_t count) {
    if (at + count > bytes.size()) {
      throw Error("truncated WAV file: " + path);
    }
  };
  const auto tagAt = [&](std::size_t at) {
    need(at, 4);
    return std::string(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                       bytes.begin() + static_cast<std::ptrdiff_t>(at) + 4);
  };
  const auto u16At = [&](std::size_t at) -> std::uint16_t {
    need(at, 2);
    return static_cast<std::uint16_t>(bytes[at] | (bytes[at + 1] << 8));
  };
  const auto u32At = [&](std::size_t at) -> std::uint32_t {
    need(at, 4);
    return static_cast<std::uint32_t>(u16At(at)) |
           (static_cast<std::uint32_t>(u16At(at + 2)) << 16);
  };

  if (tagAt(0) != "RIFF" || tagAt(8) != "WAVE") {
    throw Error("not a RIFF/WAVE file: " + path);
  }
  WavData wav;
  bool haveFmt = false;
  std::size_t at = 12;
  while (at + 8 <= bytes.size()) {
    const std::string chunk = tagAt(at);
    const std::uint32_t size = u32At(at + 4);
    const std::size_t body = at + 8;
    if (chunk == "fmt ") {
      need(body, 16);
      if (u16At(body) != 1) throw Error("not PCM: " + path);
      if (u16At(body + 2) != 1) throw Error("not mono: " + path);
      if (u16At(body + 14) != 16) throw Error("not 16-bit: " + path);
      wav.sampleRateHz = static_cast<int>(u32At(body + 4));
      haveFmt = true;
    } else if (chunk == "data") {
      if (!haveFmt) throw Error("data chunk before fmt: " + path);
      need(body, size);
      wav.samples.reserve(size / 2);
      for (std::size_t i = 0; i + 1 < size; i += 2) {
        const auto q = static_cast<std::int16_t>(u16At(body + i));
        wav.samples.push_back(static_cast<double>(q) / 32767.0);
      }
      return wav;
    }
    at = body + size + (size & 1);  // RIFF chunks are word-aligned
  }
  throw Error("no data chunk: " + path);
}

std::vector<double> normalize(std::vector<double> samples, double peak) {
  double maxAbs = 0.0;
  for (double s : samples) maxAbs = std::max(maxAbs, std::fabs(s));
  if (maxAbs > 0.0) {
    const double scale = peak / maxAbs;
    for (double& s : samples) s *= scale;
  }
  return samples;
}

}  // namespace lifta
