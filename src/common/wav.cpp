#include "common/wav.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "common/error.hpp"

namespace lifta {
namespace {

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v & 0xffff));
  put16(out, static_cast<std::uint16_t>(v >> 16));
}

void putTag(std::vector<std::uint8_t>& out, const char* tag) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(tag[i]));
}

}  // namespace

void writeWav(const std::string& path, const std::vector<double>& samples,
              int sampleRateHz) {
  const std::uint32_t dataBytes = static_cast<std::uint32_t>(samples.size() * 2);
  std::vector<std::uint8_t> out;
  out.reserve(44 + dataBytes);
  putTag(out, "RIFF");
  put32(out, 36 + dataBytes);
  putTag(out, "WAVE");
  putTag(out, "fmt ");
  put32(out, 16);                 // PCM fmt chunk size
  put16(out, 1);                  // PCM
  put16(out, 1);                  // mono
  put32(out, static_cast<std::uint32_t>(sampleRateHz));
  put32(out, static_cast<std::uint32_t>(sampleRateHz * 2));  // byte rate
  put16(out, 2);                  // block align
  put16(out, 16);                 // bits per sample
  putTag(out, "data");
  put32(out, dataBytes);
  for (double s : samples) {
    const double clamped = std::clamp(s, -1.0, 1.0);
    const auto q = static_cast<std::int16_t>(std::lrint(clamped * 32767.0));
    put16(out, static_cast<std::uint16_t>(q));
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw Error("cannot open for writing: " + path);
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  if (written != out.size()) throw Error("short write: " + path);
}

std::vector<double> normalize(std::vector<double> samples, double peak) {
  double maxAbs = 0.0;
  for (double s : samples) maxAbs = std::max(maxAbs, std::fabs(s));
  if (maxAbs > 0.0) {
    const double scale = peak / maxAbs;
    for (double& s : samples) s *= scale;
  }
  return samples;
}

}  // namespace lifta
