#include "common/string_util.hpp"

#include <cctype>
#include <cstdio>

namespace lifta {

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string indent(const std::string& text, int spaces) {
  const std::string pad(static_cast<std::size_t>(spaces), ' ');
  std::string out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string line =
        text.substr(start, nl == std::string::npos ? nl : nl - start);
    if (!line.empty()) out += pad;
    out += line;
    if (nl == std::string::npos) break;
    out += '\n';
    start = nl + 1;
  }
  return out;
}

bool contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(const std::string& text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string collapseWhitespace(const std::string& text) {
  std::string out;
  bool inSpace = false;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      inSpace = true;
      continue;
    }
    if (inSpace && !out.empty()) out += ' ';
    inSpace = false;
    out += c;
  }
  return out;
}

}  // namespace lifta
