#include "common/cli.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace lifta {

CliArgs CliArgs::parse(int argc, const char* const* argv, bool allowUnknown) {
  (void)allowUnknown;
  CliArgs out;
  if (argc > 0) out.program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      out.positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      out.flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // --key value, unless the next token is itself a flag (then boolean).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      out.flags_[arg] = argv[++i];
    } else {
      out.flags_[arg] = "true";
    }
  }
  return out;
}

bool CliArgs::has(const std::string& key) const {
  return flags_.count(key) != 0;
}

std::string CliArgs::getString(const std::string& key,
                               const std::string& dflt) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? dflt : it->second;
}

std::int64_t CliArgs::getInt(const std::string& key, std::int64_t dflt) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return dflt;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::getDouble(const std::string& key, double dflt) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return dflt;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::getBool(const std::string& key, bool dflt) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return dflt;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace lifta
