#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace lifta {

namespace {

// Pool whose task body the calling thread is currently executing (nullptr
// outside any parallel region). Used to detect re-entrant submissions, which
// must not recurse into the scheduler the thread is already serving.
thread_local const ThreadPool* tlActivePool = nullptr;

struct ActivePoolGuard {
  const ThreadPool* saved;
  explicit ActivePoolGuard(const ThreadPool* pool) : saved(tlActivePool) {
    tlActivePool = pool;
  }
  ~ActivePoolGuard() { tlActivePool = saved; }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in every dispatch, so spawn threads-1
  // workers.
  const std::size_t numWorkers = threads - 1;
  deques_.reserve(numWorkers);
  for (std::size_t i = 0; i < numWorkers; ++i) {
    deques_.emplace_back(new WorkerDeque());
  }
  workers_.reserve(numWorkers);
  for (std::size_t i = 0; i < numWorkers; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleepMu_);
    stop_ = true;
    stopFlag_.store(true, std::memory_order_relaxed);
  }
  cvWork_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::insideParallelRegion() const noexcept {
  return tlActivePool == this;
}

void ThreadPool::enqueueReady(const TaskRef& ref, std::size_t self) {
  if (self != kExternalSlot) {
    // Owner pushes to the back of its own deque; it will pop the back next,
    // so a chain of dependent tasks stays on one core.
    WorkerDeque& d = *deques_[self];
    std::lock_guard<std::mutex> lock(d.mu);
    d.q.push_back(ref);
  } else {
    std::lock_guard<std::mutex> lock(injectMu_);
    inject_.push_back(ref);
  }
  readyCount_.fetch_add(1);
  if (sleeperCount_.load() > 0) {
    // Take sleepMu_ so the notify cannot slip between a sleeper's predicate
    // check and its wait.
    std::lock_guard<std::mutex> lock(sleepMu_);
    cvWork_.notify_all();
  }
}

bool ThreadPool::findWork(std::size_t self, TaskRef& out) {
  if (readyCount_.load() == 0) return false;
  if (self != kExternalSlot) {
    // 1. Own deque, newest first.
    {
      WorkerDeque& d = *deques_[self];
      std::lock_guard<std::mutex> lock(d.mu);
      if (!d.q.empty()) {
        out = d.q.back();
        d.q.pop_back();
        readyCount_.fetch_sub(1);
        return true;
      }
    }
    // 2. Steal the oldest task from another worker, scanning from a
    //    self-dependent offset so thieves spread across victims.
    const std::size_t n = deques_.size();
    for (std::size_t k = 1; k < n; ++k) {
      WorkerDeque& d = *deques_[(self + k) % n];
      std::lock_guard<std::mutex> lock(d.mu);
      if (!d.q.empty()) {
        out = d.q.front();
        d.q.pop_front();
        readyCount_.fetch_sub(1);
        return true;
      }
    }
  }
  // 3. Injection queue (externals look here first and also steal below).
  {
    std::lock_guard<std::mutex> lock(injectMu_);
    if (!inject_.empty()) {
      out = inject_.front();
      inject_.pop_front();
      readyCount_.fetch_sub(1);
      return true;
    }
  }
  if (self == kExternalSlot) {
    for (auto& dp : deques_) {
      std::lock_guard<std::mutex> lock(dp->mu);
      if (!dp->q.empty()) {
        out = dp->q.front();
        dp->q.pop_front();
        readyCount_.fetch_sub(1);
        return true;
      }
    }
  }
  return false;
}

void ThreadPool::executeTask(const TaskRef& ref, std::size_t self) {
  Execution& exec = *ref.exec;
  TaskGraph::Node& node = exec.graph->nodes_[ref.task];
  if (!exec.failed.load(std::memory_order_relaxed)) {
    ActivePoolGuard guard(this);
    try {
      node.body();
    } catch (...) {
      std::lock_guard<std::mutex> lock(exec.errMu);
      if (!exec.firstError) exec.firstError = std::current_exception();
      exec.failed.store(true, std::memory_order_relaxed);
    }
  }
  // Release successors. acq_rel: the release half publishes this body's
  // writes to whichever thread runs the successor; the acquire half extends
  // the chain across sibling predecessors (release sequence on `pending`).
  for (TaskGraph::TaskId s : node.successors) {
    if (exec.graph->nodes_[s].pending.fetch_sub(1, std::memory_order_acq_rel) ==
        1) {
      enqueueReady(TaskRef{&exec, s}, self);
    }
  }
  // Retire. After a non-final decrement this thread never touches `exec`
  // again; the final decrement publishes completion under sleepMu_ so the
  // submitter cannot pop its stack frame while we are mid-signal.
  if (exec.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard<std::mutex> lock(sleepMu_);
      exec.done = true;
    }
    cvWork_.notify_all();
  }
}

void ThreadPool::workerLoop(std::size_t self) {
  for (;;) {
    TaskRef ref;
    if (findWork(self, ref)) {
      executeTask(ref, self);
      continue;
    }
    // Brief spin before sleeping: a pipelined step graph usually makes new
    // tasks ready within microseconds.
    bool found = false;
    for (int spin = 0; spin < 4 && !found; ++spin) {
      std::this_thread::yield();
      found = findWork(self, ref);
    }
    if (found) {
      executeTask(ref, self);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleepMu_);
    sleeperCount_.fetch_add(1);
    cvWork_.wait(lock, [&] { return stop_ || readyCount_.load() > 0; });
    sleeperCount_.fetch_sub(1);
    if (stop_) return;
  }
}

void ThreadPool::helpUntilDone(Execution& exec) {
  for (;;) {
    {
      // `done` is only written under sleepMu_, so this read is race-free and
      // — crucially — once we observe it, the setter has already released
      // the mutex region that touched our stack frame.
      std::lock_guard<std::mutex> lock(sleepMu_);
      if (exec.done) return;
    }
    TaskRef ref;
    if (findWork(kExternalSlot, ref)) {
      // Helping is global: the task may belong to another submitter's
      // execution. Executing it anyway keeps every in-flight submission
      // draining and lets concurrent submitters' work interleave.
      executeTask(ref, kExternalSlot);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleepMu_);
    sleeperCount_.fetch_add(1);
    cvWork_.wait(lock, [&] { return exec.done || readyCount_.load() > 0; });
    sleeperCount_.fetch_sub(1);
  }
}

void ThreadPool::runGraphSerial(TaskGraph& graph) {
  auto& nodes = graph.nodes_;
  for (auto& node : nodes) {
    node.pending.store(node.numPredecessors, std::memory_order_relaxed);
  }
  // Kahn's algorithm with a FIFO seeded in creation order: matches the
  // issue order a single worker would see, and detects would-be deadlocks.
  std::deque<TaskGraph::TaskId> ready;
  for (TaskGraph::TaskId id = 0; id < nodes.size(); ++id) {
    if (nodes[id].numPredecessors == 0) ready.push_back(id);
  }
  std::size_t executed = 0;
  std::exception_ptr firstError;
  while (!ready.empty()) {
    const TaskGraph::TaskId id = ready.front();
    ready.pop_front();
    if (!firstError) {
      try {
        nodes[id].body();
      } catch (...) {
        firstError = std::current_exception();
      }
    }
    ++executed;
    for (TaskGraph::TaskId s : nodes[id].successors) {
      if (nodes[s].pending.fetch_sub(1, std::memory_order_relaxed) == 1) {
        ready.push_back(s);
      }
    }
  }
  LIFTA_CHECK(executed == nodes.size(),
              "TaskGraph: unreachable tasks (missing or inconsistent edges)");
  if (firstError) std::rethrow_exception(firstError);
}

void ThreadPool::run(TaskGraph& graph) {
  if (graph.empty()) return;
  if (workers_.empty() || tlActivePool == this) {
    // No workers, or a nested submission from inside one of our own task
    // bodies: run on the calling thread in dependency order.
    ActivePoolGuard guard(this);
    runGraphSerial(graph);
    return;
  }
  Execution exec;
  exec.graph = &graph;
  exec.remaining.store(graph.nodes_.size(), std::memory_order_relaxed);
  // Reset runtime counters, then inject the initially-ready frontier in one
  // batch (creation order preserved — the closest thing to the serial order).
  std::size_t seeded = 0;
  for (auto& node : graph.nodes_) {
    node.pending.store(node.numPredecessors, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(injectMu_);
    for (TaskGraph::TaskId id = 0; id < graph.nodes_.size(); ++id) {
      if (graph.nodes_[id].numPredecessors == 0) {
        inject_.push_back(TaskRef{&exec, id});
        ++seeded;
      }
    }
  }
  LIFTA_CHECK(seeded > 0, "TaskGraph: no ready task to seed execution");
  readyCount_.fetch_add(seeded);
  if (sleeperCount_.load() > 0) {
    std::lock_guard<std::mutex> lock(sleepMu_);
    cvWork_.notify_all();
  }
  helpUntilDone(exec);
  if (exec.firstError) std::rethrow_exception(exec.firstError);
}

void ThreadPool::runSerialChunks(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
  std::exception_ptr firstError;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    try {
      body(begin, end);
    } catch (...) {
      // Mirror the pooled path: remember the first error, abandon the rest.
      firstError = std::current_exception();
      break;
    }
  }
  if (firstError) std::rethrow_exception(firstError);
}

void ThreadPool::parallelForChunked(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  // Aim for ~4 chunks per thread to balance load without excess scheduling.
  const std::size_t target = threadCount() * 4;
  const std::size_t chunk = std::max<std::size_t>(1, n / target);
  if (workers_.empty() || tlActivePool == this) {
    // No workers, or a nested call from inside one of our own task bodies:
    // dispatch serially with the same chunking and exception behaviour.
    runSerialChunks(n, chunk, body);
    return;
  }
  // A bulk loop is a graph of independent chunk tasks. Concurrent external
  // submitters each build their own graph, so their chunks interleave across
  // the workers instead of serializing loop-by-loop.
  TaskGraph graph;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    graph.add([&body, begin, end] { body(begin, end); });
  }
  run(graph);
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  parallelForChunked(n, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

}  // namespace lifta
