#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace lifta {

namespace {

// Pool whose task body the calling thread is currently executing (nullptr
// outside any parallel region). Used to detect re-entrant parallelFor calls,
// which must not touch the shared dispatch state of the already-running loop.
thread_local const ThreadPool* tlActivePool = nullptr;

struct ActivePoolGuard {
  const ThreadPool* saved;
  explicit ActivePoolGuard(const ThreadPool* pool) : saved(tlActivePool) {
    tlActivePool = pool;
  }
  ~ActivePoolGuard() { tlActivePool = saved; }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallelFor, so spawn threads-1
  // workers.
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cvStart_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::workerLoop() {
  std::size_t seenGeneration = 0;
  for (;;) {
    Task* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cvStart_.wait(lock, [&] {
        return stop_ || (current_ != nullptr && generation_ != seenGeneration);
      });
      if (stop_) return;
      seenGeneration = generation_;
      task = current_;
      ++activeWorkers_;
    }
    {
      ActivePoolGuard guard(this);
      runShare(*task);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --activeWorkers_;
    }
    cvDone_.notify_one();
  }
}

void ThreadPool::runShare(Task& task) {
  for (;;) {
    std::size_t begin;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (nextIndex_ >= task.n) return;
      begin = nextIndex_;
      nextIndex_ += task.chunk;
    }
    const std::size_t end = std::min(task.n, begin + task.chunk);
    try {
      task.body(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!firstError_) firstError_ = std::current_exception();
      // Drain remaining work so other threads finish quickly.
      nextIndex_ = task.n;
      return;
    }
  }
}

bool ThreadPool::insideParallelRegion() const noexcept {
  return tlActivePool == this;
}

void ThreadPool::runSerialChunks(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
  std::exception_ptr firstError;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    try {
      body(begin, end);
    } catch (...) {
      // Mirror the pooled path: remember the first error, abandon the rest.
      firstError = std::current_exception();
      break;
    }
  }
  if (firstError) std::rethrow_exception(firstError);
}

void ThreadPool::parallelForChunked(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  // Aim for ~4 chunks per thread to balance load without excess locking.
  const std::size_t target = threadCount() * 4;
  const std::size_t chunk = std::max<std::size_t>(1, n / target);
  if (workers_.empty() || tlActivePool == this) {
    // No workers, or a nested call from inside one of our own task bodies:
    // dispatch serially with the same chunking and exception behaviour.
    runSerialChunks(n, chunk, body);
    return;
  }
  // One dispatch at a time: concurrent external submitters (e.g. several
  // RIR jobs stepping over one shared pool) queue up here instead of
  // clobbering each other's task state or stealing each other's errors.
  std::lock_guard<std::mutex> submitLock(submitMu_);
  Task task;
  task.body = body;
  task.n = n;
  task.chunk = chunk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = &task;
    nextIndex_ = 0;
    firstError_ = nullptr;
    ++generation_;
  }
  cvStart_.notify_all();
  {
    ActivePoolGuard guard(this);
    runShare(task);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cvDone_.wait(lock, [&] { return activeWorkers_ == 0; });
    current_ = nullptr;
    if (firstError_) {
      auto err = firstError_;
      firstError_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  parallelForChunked(n, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

}  // namespace lifta
