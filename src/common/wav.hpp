// Minimal mono 16-bit PCM WAV writer, used by examples to dump room impulse
// responses captured at a receiver so the results can be auditioned.
#pragma once

#include <string>
#include <vector>

namespace lifta {

/// Writes `samples` (clamped to [-1, 1]) as a mono 16-bit PCM WAV file.
/// Throws lifta::Error on I/O failure.
void writeWav(const std::string& path, const std::vector<double>& samples,
              int sampleRateHz);

/// Peak-normalizes samples to the given amplitude (no-op for silent input).
std::vector<double> normalize(std::vector<double> samples, double peak = 0.89);

}  // namespace lifta
