// Minimal mono 16-bit PCM WAV writer/reader. The writer dumps room impulse
// responses captured at a receiver (examples, job-service export, batch
// dataset shards); the reader parses exactly the files the writer emits so
// exports are round-trip testable and datasets can be audited.
#pragma once

#include <string>
#include <vector>

namespace lifta {

/// Writes `samples` (clamped to [-1, 1]) as a mono 16-bit PCM WAV file.
/// Throws lifta::Error on I/O failure.
void writeWav(const std::string& path, const std::vector<double>& samples,
              int sampleRateHz);

/// A decoded mono WAV file: samples mapped back to doubles by q / 32767.
struct WavData {
  int sampleRateHz = 0;
  std::vector<double> samples;
};

/// Reads a mono 16-bit PCM WAV file (the writeWav format; unknown RIFF
/// chunks before `data` are skipped). Throws lifta::Error on I/O failure
/// or an unsupported format. Round trip: writeWav(readWav(p).samples)
/// reproduces the file byte-for-byte, and readWav(writeWav(s)) equals s
/// within the 16-bit quantization step (exactly, for already-quantized
/// samples).
WavData readWav(const std::string& path);

/// Peak-normalizes samples to the given amplitude (no-op for silent input).
std::vector<double> normalize(std::vector<double> samples, double peak = 0.89);

}  // namespace lifta
