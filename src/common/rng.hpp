// Deterministic PRNG (xoshiro256**) for tests and workload generators.
// Deterministic seeding keeps property tests and benchmark inputs
// reproducible across runs and platforms.
#pragma once

#include <cstdint>

namespace lifta {

class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 expansion of the seed into the 4-word state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % range);
  }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace lifta
