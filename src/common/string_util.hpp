// Small string helpers used mostly by the code generator (which builds C
// source text) and the benchmark table printers. GCC 12 does not ship
// std::format, so `strformat` provides a printf-style alternative.
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace lifta {

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Indents every line of `text` by `spaces` spaces (used for nested C blocks).
std::string indent(const std::string& text, int spaces);

/// True if `text` contains `needle`.
bool contains(const std::string& text, const std::string& needle);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(const std::string& text, char sep);

/// Strips leading/trailing whitespace.
std::string trim(const std::string& text);

/// Collapses runs of whitespace to single spaces and trims; used by codegen
/// golden tests to compare code modulo formatting.
std::string collapseWhitespace(const std::string& text);

}  // namespace lifta
