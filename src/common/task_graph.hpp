// A dependency-driven task graph executed by ThreadPool's work-stealing
// scheduler (thread_pool.hpp).
//
// Nodes are arbitrary callables; edges order them. A node becomes ready when
// every predecessor has finished, at which point the scheduler pushes it onto
// the finishing worker's deque (depth-first locality: a chain of dependent
// tasks tends to stay on one core, hot in cache). This replaces the
// barriered fork/join stepping of the acoustics reference stepper: instead
// of two global barriers per time step, per-slab tasks start the moment the
// slabs they actually read are done, and tasks of step t+1 overlap the tail
// of step t.
//
// Edges must point from a lower task id to a higher one (construction order
// is a valid topological order), which makes cycles impossible by
// construction — the same property the host-program DAG lint relies on when
// it orders buffer accesses (src/analysis/host_lint).
//
// A graph may be executed repeatedly (ThreadPool::run resets the runtime
// dependency counters), but only one execution at a time. Bodies run at most
// once per execution; after a body throws, the remaining bodies of the same
// graph are skipped while the graph still drains, and the first exception is
// rethrown to the submitter.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace lifta {

class ThreadPool;

class TaskGraph {
public:
  using TaskId = std::uint32_t;

  /// Appends a task and returns its id (ids are dense, in creation order).
  TaskId add(std::function<void()> body);

  /// Declares that `before` must finish before `after` may start.
  /// Requires before < after (creation order is the topological order).
  /// Duplicate edges are permitted and harmless.
  void addEdge(TaskId before, TaskId after);

  std::size_t size() const noexcept { return nodes_.size(); }
  bool empty() const noexcept { return nodes_.empty(); }

  /// Number of edges added so far (diagnostics / tests).
  std::size_t edgeCount() const noexcept { return edges_; }

private:
  friend class ThreadPool;

  struct Node {
    std::function<void()> body;
    std::vector<TaskId> successors;
    std::uint32_t numPredecessors = 0;
    /// Runtime countdown, reset from numPredecessors at each execution.
    std::atomic<std::uint32_t> pending{0};
  };

  // deque, not vector: Node holds an atomic and must never be moved.
  std::deque<Node> nodes_;
  std::size_t edges_ = 0;
};

}  // namespace lifta
