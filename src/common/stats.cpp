#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace lifta {

SampleStats summarize(std::vector<double> samples) {
  SampleStats s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t n = samples.size();
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(n);
  double sq = 0.0;
  for (double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = (n > 1) ? std::sqrt(sq / static_cast<double>(n - 1)) : 0.0;
  return s;
}

double median(std::vector<double> samples) {
  return summarize(std::move(samples)).median;
}

}  // namespace lifta
