#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

#ifdef __linux__
#include <time.h>
#endif

namespace lifta {

std::uint64_t threadCpuTimeNs() {
#ifdef __linux__
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SampleStats summarize(std::vector<double> samples) {
  SampleStats s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t n = samples.size();
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(n);
  double sq = 0.0;
  for (double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = (n > 1) ? std::sqrt(sq / static_cast<double>(n - 1)) : 0.0;
  return s;
}

double median(std::vector<double> samples) {
  return summarize(std::move(samples)).median;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  LIFTA_CHECK(bins >= 1, "histogram needs at least one bin");
  LIFTA_CHECK(hi > lo || bins == 1, "histogram range is empty");
}

Histogram Histogram::fromSamples(const std::vector<double>& samples,
                                 std::size_t bins) {
  double lo = 0.0, hi = 1.0;
  if (!samples.empty()) {
    lo = *std::min_element(samples.begin(), samples.end());
    hi = *std::max_element(samples.begin(), samples.end());
    if (hi <= lo) hi = lo + 1.0;  // degenerate: everything lands in bin 0
  }
  Histogram h(lo, hi, bins);
  for (double v : samples) h.record(v);
  return h;
}

void Histogram::record(double value) {
  const double span = hi_ - lo_;
  auto bin = static_cast<std::ptrdiff_t>((value - lo_) / span *
                                         static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::binLo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(int barWidth) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const int bar = static_cast<int>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        barWidth);
    std::snprintf(line, sizeof line, "  [%9.4f, %9.4f) %6zu |", binLo(b),
                  binLo(b + 1), counts_[b]);
    out += line;
    out.append(static_cast<std::size_t>(std::max(1, bar)), '#');
    out += "\n";
  }
  return out;
}

}  // namespace lifta
