// Minimal command-line flag parser for the bench/example binaries.
// Flags use --name=value or --name value syntax; unknown flags are errors
// unless `allowUnknown` is set (google-benchmark binaries pass their own).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lifta {

class CliArgs {
public:
  /// Parses argv. Flags look like --key=value, --key value, or bare --key
  /// (boolean true). Positional arguments are collected in order.
  static CliArgs parse(int argc, const char* const* argv,
                       bool allowUnknown = true);

  bool has(const std::string& key) const;
  std::string getString(const std::string& key, const std::string& dflt) const;
  std::int64_t getInt(const std::string& key, std::int64_t dflt) const;
  double getDouble(const std::string& key, double dflt) const;
  bool getBool(const std::string& key, bool dflt) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace lifta
