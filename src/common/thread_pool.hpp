// Work-stealing task scheduler behind the pool API used by the simulated
// OpenCL runtime and the acoustics steppers.
//
// Internals: each worker owns a deque; it pushes tasks it makes ready onto
// the back and pops from the back (depth-first, cache-hot), while idle
// workers steal from the front of a victim's deque (breadth-first, oldest
// work first — the classic workpile discipline). External submitter threads
// (RIR service executors, test threads) inject ready tasks through a shared
// injection queue and then *help*: they execute tasks themselves until their
// own submission completes, so a submitter is never just blocked behind the
// workers.
//
// Two entry points share the scheduler:
//  - run(TaskGraph&): executes a dependency graph (task_graph.hpp); a task
//    becomes ready when its last predecessor finishes. This is what the
//    acoustics task-graph stepper uses for cross-step pipelining.
//  - parallelFor/parallelForChunked: a bulk loop is just a graph of
//    independent chunk tasks. Blocks until all iterations complete,
//    mirroring the implicit barrier of a clFinish on an in-order queue.
//
// Concurrent submitters are first-class: tasks from any number of in-flight
// submissions interleave freely across the workers (no whole-loop dispatch
// lock), and each submitter observes only its own submission's exceptions.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/task_graph.hpp"

namespace lifta {

class ThreadPool {
public:
  /// Creates a pool with `threads` workers. 0 means hardware concurrency.
  /// The calling thread participates in every dispatch, so `threads == 1`
  /// spawns no OS threads and runs everything serially on the caller.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const noexcept { return workers_.size() + 1; }

  /// Runs body(i) for all i in [0, n), distributing contiguous chunks across
  /// the pool plus the calling thread. Blocks until every iteration is done.
  /// Exceptions thrown by `body` are captured and the first one is rethrown.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Chunked variant: body(beginIdx, endIdx) per chunk. Lower overhead for
  /// fine-grained iterations.
  ///
  /// Re-entrancy: calling parallelFor/parallelForChunked from inside a task
  /// body of the *same* pool would deadlock-prone-ly recurse into the
  /// scheduler, so nested calls are detected (thread-local marker) and run
  /// serially on the calling thread with identical chunking and exception
  /// semantics.
  ///
  /// Concurrent submitters: multiple external threads may submit loops or
  /// graphs at the same time (the RIR job service steps many simulations
  /// over one shared pool). Their tasks interleave across the workers;
  /// each submitter observes only its own submission's exceptions.
  void parallelForChunked(
      std::size_t n, const std::function<void(std::size_t, std::size_t)>& body);

  /// Executes `graph` to completion: every task body runs exactly once (on
  /// some thread), edges are respected, and the call returns only when the
  /// whole graph has drained. If a body throws, the remaining bodies of this
  /// graph are skipped (dependents still "complete" so the graph drains) and
  /// the first exception is rethrown here. The graph's runtime counters are
  /// reset on entry, so the same graph object may be run again — but not
  /// concurrently with itself.
  ///
  /// With no workers, or when called from inside one of this pool's own task
  /// bodies, the graph runs serially on the calling thread in dependency
  /// order (creation order restricted to ready tasks).
  void run(TaskGraph& graph);

  /// True while the calling thread is executing a task body of this pool
  /// (i.e. a parallelFor from here would take the serial nested path).
  bool insideParallelRegion() const noexcept;

  /// Process-wide default pool (sized to hardware concurrency).
  static ThreadPool& global();

private:
  /// One in-flight run() (or loop) — lives on the submitter's stack. The
  /// submitter only returns after `done` is set under sleepMu_, and workers
  /// never touch an Execution after decrementing `remaining` to zero, so
  /// the stack lifetime is safe.
  struct Execution {
    TaskGraph* graph = nullptr;
    std::atomic<std::size_t> remaining{0};
    std::atomic<bool> failed{false};
    std::mutex errMu;
    std::exception_ptr firstError;
    bool done = false;  // guarded by ThreadPool::sleepMu_
  };

  struct TaskRef {
    Execution* exec = nullptr;
    TaskGraph::TaskId task = 0;
  };

  /// Per-worker deque. A plain mutex per deque keeps the implementation
  /// obviously correct under TSan; contention is low because each worker
  /// mostly touches its own deque and steals are rare once the pipeline
  /// fills.
  struct WorkerDeque {
    std::mutex mu;
    std::deque<TaskRef> q;
  };

  static constexpr std::size_t kExternalSlot = ~std::size_t{0};

  void workerLoop(std::size_t self);
  /// Claims one ready task: own deque back, then steal others' front, then
  /// the injection queue (externals start at the injection queue).
  bool findWork(std::size_t self, TaskRef& out);
  /// Runs (or skips, if the execution already failed) one task body, then
  /// releases its successors and retires it from its execution.
  void executeTask(const TaskRef& ref, std::size_t self);
  void enqueueReady(const TaskRef& ref, std::size_t self);
  void helpUntilDone(Execution& exec);
  /// Serial fallback (no workers, or nested call): dependency order on the
  /// calling thread, first-exception-wins with drain-by-skipping.
  void runGraphSerial(TaskGraph& graph);
  /// Serial loop fallback with the pooled path's chunking and
  /// first-exception-wins semantics.
  static void runSerialChunks(
      std::size_t n, std::size_t chunk,
      const std::function<void(std::size_t, std::size_t)>& body);

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerDeque>> deques_;  // one per worker

  std::mutex injectMu_;
  std::deque<TaskRef> inject_;  // ready tasks from external threads

  /// Tasks sitting in some deque or the injection queue, not yet claimed.
  /// Lets sleepers decide whether waking is worthwhile without sweeping
  /// every deque.
  std::atomic<std::size_t> readyCount_{0};
  std::atomic<std::size_t> sleeperCount_{0};
  std::mutex sleepMu_;
  std::condition_variable cvWork_;
  bool stop_ = false;  // guarded by sleepMu_
  std::atomic<bool> stopFlag_{false};
};

}  // namespace lifta
