// Fixed-size worker pool used by the simulated OpenCL runtime to execute
// NDRange work-groups in parallel. Provides a bulk parallel-for primitive
// (`parallelFor`) that blocks until all iterations complete; this mirrors the
// implicit completion barrier of a clFinish on an in-order queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lifta {

class ThreadPool {
public:
  /// Creates a pool with `threads` workers. 0 means hardware concurrency.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const noexcept { return workers_.size() + 1; }

  /// Runs body(i) for all i in [0, n), distributing contiguous chunks across
  /// the pool plus the calling thread. Blocks until every iteration is done.
  /// Exceptions thrown by `body` are captured and the first one is rethrown.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Chunked variant: body(beginIdx, endIdx) per chunk. Lower overhead for
  /// fine-grained iterations.
  ///
  /// Re-entrancy: calling parallelFor/parallelForChunked from inside a task
  /// body of the *same* pool would corrupt the shared dispatch state, so
  /// nested calls are detected (thread-local marker) and run serially on the
  /// calling thread with identical chunking and exception semantics.
  ///
  /// Concurrent submitters: multiple external threads may call
  /// parallelFor/parallelForChunked on the same pool at the same time (the
  /// RIR job service steps many simulations over one shared pool). Loops are
  /// dispatched one at a time — later submitters block until the in-flight
  /// loop drains — and each submitter observes only its own loop's
  /// exceptions.
  void parallelForChunked(
      std::size_t n, const std::function<void(std::size_t, std::size_t)>& body);

  /// True while the calling thread is executing a task body of this pool
  /// (i.e. a parallelFor from here would take the serial nested path).
  bool insideParallelRegion() const noexcept;

  /// Process-wide default pool (sized to hardware concurrency).
  static ThreadPool& global();

private:
  struct Task {
    std::function<void(std::size_t, std::size_t)> body;
    std::size_t chunk = 1;
    std::size_t n = 0;
  };

  void workerLoop();
  void runShare(Task& task);
  /// Serial fallback (no workers, or nested call): same chunk granularity
  /// and first-exception-wins semantics as the pooled path.
  static void runSerialChunks(
      std::size_t n, std::size_t chunk,
      const std::function<void(std::size_t, std::size_t)>& body);

  std::vector<std::thread> workers_;
  /// Serializes whole-loop dispatches from concurrent external submitters.
  /// Held for the full lifetime of one parallelFor dispatch so current_/
  /// nextIndex_/firstError_ always describe exactly one loop. Nested calls
  /// never reach for it (they run serially), so it cannot self-deadlock.
  std::mutex submitMu_;
  std::mutex mu_;
  std::condition_variable cvStart_;
  std::condition_variable cvDone_;
  Task* current_ = nullptr;
  std::size_t nextIndex_ = 0;
  std::size_t activeWorkers_ = 0;
  std::size_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr firstError_;
};

}  // namespace lifta
