// Error handling primitives shared by every lift-acoustics module.
//
// All recoverable failures are reported as lifta::Error (a std::runtime_error
// carrying a formatted message). Programming errors caught at runtime use
// LIFTA_CHECK, which throws rather than aborting so tests can assert on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lifta {

/// Base exception for all lift-acoustics errors.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a LIFT IR program fails type checking.
class TypeError : public Error {
public:
  explicit TypeError(const std::string& what) : Error("type error: " + what) {}
};

/// Thrown by the code generator for unsupported or malformed IR.
class CodegenError : public Error {
public:
  explicit CodegenError(const std::string& what)
      : Error("codegen error: " + what) {}
};

/// Thrown by the static-analysis suite when a kernel or host program has an
/// error-severity finding (proven out-of-bounds access, proven write race,
/// malformed host DAG). Carries the full diagnostic report text.
class AnalysisError : public Error {
public:
  explicit AnalysisError(const std::string& what)
      : Error("analysis error: " + what) {}
};

/// Thrown by the simulated OpenCL runtime (build failures, bad arguments...).
class OclError : public Error {
public:
  explicit OclError(const std::string& what) : Error("ocl error: " + what) {}
};

namespace detail {
[[noreturn]] inline void checkFailed(const char* cond, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace lifta

/// Invariant check that throws lifta::Error with location info on failure.
#define LIFTA_CHECK(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) ::lifta::detail::checkFailed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
