#include "codegen/kernel_codegen.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <vector>

#include "analysis/equiv.hpp"
#include "analysis/interval.hpp"
#include "analysis/simplify.hpp"
#include "analysis/verify.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "ir/typecheck.hpp"

namespace lifta::codegen {

using ir::ExprPtr;
using ir::Node;
using ir::Op;
using view::ViewPtr;

namespace {

bool isIdentifier(const std::string& s) {
  if (s.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
    return false;
  }
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

bool isDecimalInteger(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

/// Div/Mod can trap (divide by zero) and depend on evaluation context; index
/// terms containing them are never hoisted or named out of their original
/// position unless the simplifier already eliminated them.
bool containsDivMod(const arith::Expr& e) {
  if (e.kind() == arith::Kind::Div || e.kind() == arith::Kind::Mod) {
    return true;
  }
  if (e.kind() == arith::Kind::Const || e.kind() == arith::Kind::Var) {
    return false;
  }
  for (const auto& op : e.operands()) {
    if (containsDivMod(op)) return true;
  }
  return false;
}

class Emitter {
 public:
  Emitter(const memory::KernelDef& def, CodegenOptions opts)
      : def_(def), opts_(opts) {
    if (!opts_.optimize) {
      opts_.simplify = false;
      opts_.cse = false;
      opts_.chunkSchedule = false;
      opts_.restrictPointers = false;
    }
  }

  GeneratedKernel run() {
    checkPrecision();
    ir::typecheck(def_.body);
    GeneratedKernel out;
    out.name = def_.name;
    out.plan = memory::planMemory(def_);

    seedProver();
    scopes_.emplace_back();  // function-top scope (level 0)

    bindParams(out.plan);
    emitUnpack(out.plan);

    ViewPtr topDest;
    if (memory::isEffectOnly(def_.body)) {
      // All writes happen through WriteTo destinations.
    } else if (def_.outAliasParam) {
      topDest = env_.at(findParam(*def_.outAliasParam).get()).view;
    } else {
      topDest = view::memView("out", def_.body->type);
    }
    emitArray(def_.body, topDest);

    LIFTA_CHECK(scopes_.size() == 1, "unbalanced codegen scopes");
    out.body = scopes_.front().text.str();
    out.optimized = opts_.optimize;
    if (usedChunk_) out.preferredChunk = opts_.chunk;
    out.source = assemble(out);
    return out;
  }

 private:
  /// Every floating parameter must agree with the kernel's `real` typedef:
  /// a float-typed IR program generated with typedef double (or vice versa)
  /// would silently reinterpret the caller's buffers.
  void checkPrecision() const {
    for (const auto& p : def_.params) {
      const ir::TypePtr scalar =
          p->type->isTuple() ? nullptr : p->type->scalarElem();
      if (scalar == nullptr) continue;
      const ir::ScalarKind k = scalar->scalarKind();
      if ((k == ir::ScalarKind::Float || k == ir::ScalarKind::Double) &&
          k != def_.real) {
        throw CodegenError(
            "parameter '" + p->name + "' is " + scalar->toString() +
            " but the kernel precision (KernelDef::real) is " +
            (def_.real == ir::ScalarKind::Float ? "Float" : "Double"));
      }
    }
  }

  // --- bindings -----------------------------------------------------------

  struct Binding {
    ViewPtr view;            // arrays / tuples
    std::string scalarCode;  // scalars (C expression, usually a local name)
  };

  const ExprPtr& findParam(const std::string& name) const {
    for (const auto& p : def_.params) {
      if (p->name == name) return p;
    }
    throw CodegenError("unknown parameter: " + name);
  }

  void bindParams(const memory::MemoryPlan& plan) {
    for (const auto& p : def_.params) {
      if (p->type->isArray()) {
        env_[p.get()] = Binding{view::memView(p->name, p->type), ""};
      } else {
        env_[p.get()] = Binding{nullptr, scalarParamCode(p)};
      }
      declared_.insert(p->name);
      varLevel_[p->name] = 0;
    }
    (void)plan;
  }

  /// A scalar parameter's C expression: normally the local unpacked from
  /// the args array; under specialization, the baked literal. Int constants
  /// stay bare decimal so indexExpr folds them into the index algebra; real
  /// constants are parenthesized so negative literals splice safely.
  std::string scalarParamCode(const ExprPtr& p) const {
    if (auto it = opts_.spec.ints.find(p->name); it != opts_.spec.ints.end()) {
      const ir::TypePtr scalar = p->type->isTuple() ? nullptr
                                                    : p->type->scalarElem();
      if (scalar && scalar->scalarKind() == ir::ScalarKind::Int) {
        return std::to_string(it->second);
      }
    }
    if (auto it = opts_.spec.reals.find(p->name);
        it != opts_.spec.reals.end()) {
      return "(" +
             memory::Specialization::realLiteral(it->second, def_.real) + ")";
    }
    return p->name;
  }

  /// Applies the specialization's int constants to an index expression
  /// (loop bounds, flat addresses, pad guards). A no-op when unspecialized.
  arith::Expr subst(const arith::Expr& e) const { return opts_.spec.subst(e); }

  // --- prover -------------------------------------------------------------

  /// Size parameters appearing in array extents are nonnegative by
  /// construction — the same fact base the analysis passes start from.
  void seedProver() {
    if (!opts_.optimize) return;
    for (const auto& p : def_.params) {
      if (!p->type->isArray()) continue;
      for (const auto& v : p->type->flatCount().freeVars()) {
        prover_.assumeAtLeast(v, 0);
      }
    }
  }

  /// Registers a loop variable's range after its scope was opened. Inside
  /// the body iv is in [0, len-1] and the range is nonempty — exactly the
  /// fact set the verifier's bounds pass uses, so every rewrite licensed
  /// here re-proves there.
  void enterLoopDomain(const std::string& iv, const arith::Expr& len) {
    varLevel_[iv] = curLevel();
    if (!opts_.optimize) return;
    prover_.setDomain(iv, analysis::Domain{arith::Expr(0),
                                           len - arith::Expr(1), true});
    prover_.assumeNonNegative(len - arith::Expr(1));
  }

  // --- output helpers -----------------------------------------------------

  /// A pending block of generated code. Loop scopes buffer their body and
  /// only splice it (after the header) into the parent when they close, so
  /// hoisted declarations appended to an outer scope mid-loop physically
  /// land *before* the loop.
  struct Scope {
    std::string header;  // loop header; emitted at close ("" for the top)
    std::ostringstream text;
    std::map<std::string, std::string> cse;  // canonical expr -> local name
  };

  int curLevel() const { return static_cast<int>(scopes_.size()) - 1; }

  void emitTo(int level, const std::string& s) {
    scopes_[static_cast<std::size_t>(level)].text
        << std::string(static_cast<std::size_t>(level) * 2, ' ') << s << "\n";
  }

  void stmt(const std::string& s) { emitTo(curLevel(), s); }

  void open(const std::string& s) {
    Scope sc;
    sc.header = s;
    scopes_.push_back(std::move(sc));
  }

  void close() {
    Scope sc = std::move(scopes_.back());
    scopes_.pop_back();
    stmt(sc.header + " {");
    scopes_.back().text << sc.text.str();
    stmt("}");
  }

  std::string fresh(const std::string& base) {
    return base + "_" + std::to_string(counter_++);
  }

  void declareLocal(const std::string& name) {
    if (!declared_.insert(name).second) {
      throw CodegenError("duplicate local name in kernel: " + name);
    }
    varLevel_[name] = curLevel();
  }

  std::string realName() const {
    return "real";
  }

  std::string zeroLiteral() const { return "(real)0"; }

  // --- optimized access emission ------------------------------------------

  /// The deepest loop level any variable of `t` is bound at; unknown names
  /// conservatively pin the term to the current level (never hoisted).
  int termLevel(const arith::Expr& t) const {
    int lvl = 0;
    for (const auto& v : t.freeVars()) {
      auto it = varLevel_.find(v);
      lvl = std::max(lvl, it == varLevel_.end() ? curLevel() : it->second);
    }
    return lvl;
  }

  /// Names `e` as a `const long` local in the scope at `level`, reusing an
  /// existing local when the same canonical expression was named there
  /// before. Trivial expressions are returned as-is.
  std::string hoistLocal(int level, const arith::Expr& e) {
    if (e.isConst() || e.kind() == arith::Kind::Var) return e.toString();
    Scope& sc = scopes_[static_cast<std::size_t>(level)];
    const std::string key = e.toString();
    auto it = sc.cse.find(key);
    if (it != sc.cse.end()) return it->second;
    const std::string name = fresh("cse");
    declared_.insert(name);
    varLevel_[name] = level;
    emitTo(level, "const long " + name + " = " + key + ";");
    sc.cse.emplace(key, name);
    return name;
  }

  /// Prints an index expression. With CSE enabled the additive terms are
  /// partitioned by loop level; the cumulative partial sums invariant at
  /// each outer level become named locals hoisted to that level, so inner
  /// loops only add their own per-iteration terms to a precomputed base.
  std::string indexCode(const arith::Expr& e) {
    if (!opts_.cse) return e.toString();
    if (e.isConst() || e.kind() == arith::Kind::Var) return e.toString();
    if (containsDivMod(e)) return e.toString();  // never lift a possible trap

    const std::vector<arith::Expr> terms =
        e.kind() == arith::Kind::Add ? e.operands()
                                     : std::vector<arith::Expr>{e};
    std::map<int, std::vector<arith::Expr>> byLevel;
    for (const auto& t : terms) byLevel[termLevel(t)].push_back(t);
    const int maxLevel = byLevel.rbegin()->first;

    arith::Expr acc(0);
    bool haveAcc = false;
    for (auto& [lvl, group] : byLevel) {
      arith::Expr sum = arith::add(std::move(group));
      if (haveAcc) sum = acc + sum;
      if (lvl == maxLevel) {
        // Innermost terms: if even they are invariant at the current depth,
        // hoist the whole expression; otherwise print it inline on top of
        // the hoisted base.
        if (lvl < curLevel()) return hoistLocal(lvl, sum);
        return sum.toString();
      }
      acc = arith::Expr::var(hoistLocal(lvl, sum));
      haveAcc = true;
    }
    return e.toString();  // unreachable: the maxLevel group always returns
  }

  /// Optimized twin of view::resolveLoad/resolveStore: simplify the flat
  /// address and the pad guards against the prover's facts, drop guard
  /// sides that are provably true, and print through the CSE/hoisting
  /// index printer. Guard nesting order matches the unoptimized printer.
  std::string accessCode(view::ResolvedAccess a, bool forStore) {
    // Specialization substitutes before simplification so the prover and
    // the simplifier see concrete extents and strides.
    a.index = subst(a.index);
    for (auto& g : a.guards) {
      g.adjusted = subst(g.adjusted);
      g.size = subst(g.size);
    }
    if (opts_.simplify) {
      a.index = analysis::simplifyIndex(a.index, prover_);
      for (auto& g : a.guards) {
        g.adjusted = analysis::simplifyIndex(g.adjusted, prover_);
      }
    }
    std::string inner;
    switch (a.kind) {
      case view::ResolvedAccess::Kind::Iota:
        inner = "((int)(" + indexCode(a.index) + "))";
        break;
      case view::ResolvedAccess::Kind::Constant:
        inner = a.code;
        break;
      case view::ResolvedAccess::Kind::Mem:
        inner = a.mem + "[" + indexCode(a.index) + "]";
        break;
    }
    if (forStore) return inner;
    // Innermost guard first so the ternaries nest naturally.
    for (auto it = a.guards.rbegin(); it != a.guards.rend(); ++it) {
      analysis::GuardSides sides;
      if (opts_.simplify) {
        sides = analysis::proveGuardSides(it->adjusted, it->size, prover_);
      }
      if (sides.proven()) continue;  // access provably in range
      const std::string adj = indexCode(it->adjusted);
      std::string cond;
      if (sides.lowerProven) {
        cond = adj + " < " + it->size.toString();
      } else if (sides.upperProven) {
        cond = "0 <= " + adj;
      } else {
        cond = "0 <= " + adj + " && " + adj + " < " + it->size.toString();
      }
      inner = "((" + cond + ") ? " + inner + " : " + zeroLiteral() + ")";
    }
    return inner;
  }

  std::string loadCode(const ViewPtr& v) {
    if (!opts_.optimize) return view::resolveLoad(v, zeroLiteral());
    return accessCode(view::resolveAccess(v, /*forStore=*/false), false);
  }

  std::string storeCode(const ViewPtr& v) {
    if (!opts_.optimize) return view::resolveStore(v);
    return accessCode(view::resolveAccess(v, /*forStore=*/true), true);
  }

  // --- scalar literal / op printing ---------------------------------------

  std::string printLiteral(const Node& n) const {
    if (n.literalKind == ir::ScalarKind::Int) {
      return std::to_string(static_cast<std::int64_t>(n.literalValue));
    }
    std::string s = (n.literalKind == ir::ScalarKind::Double)
                        ? strformat("%.17g", n.literalValue)
                        : strformat("%.9g", n.literalValue);
    if (s.find('.') == std::string::npos &&
        s.find('e') == std::string::npos &&
        s.find("inf") == std::string::npos &&
        s.find("nan") == std::string::npos) {
      s += ".0";
    }
    if (n.literalKind == ir::ScalarKind::Float) s += "f";
    return s;
  }

  static const char* binOpToken(ir::BinOp b) {
    switch (b) {
      case ir::BinOp::Add: return "+";
      case ir::BinOp::Sub: return "-";
      case ir::BinOp::Mul: return "*";
      case ir::BinOp::Div: return "/";
      case ir::BinOp::Eq: return "==";
      case ir::BinOp::Ne: return "!=";
      case ir::BinOp::Lt: return "<";
      case ir::BinOp::Le: return "<=";
      case ir::BinOp::Gt: return ">";
      case ir::BinOp::Ge: return ">=";
      case ir::BinOp::And: return "&&";
      case ir::BinOp::Or: return "||";
      default: return nullptr;
    }
  }

  // --- scalar emission -----------------------------------------------------

  /// Emits any statements the scalar expression needs and returns a C
  /// expression for its value.
  std::string emitScalar(const ExprPtr& e) {
    const Node& n = *e;
    switch (n.op) {
      case Op::Param: {
        auto it = env_.find(&n);
        if (it == env_.end()) {
          throw CodegenError("unbound parameter: " + n.name);
        }
        if (it->second.view) {
          return loadCode(it->second.view);
        }
        return it->second.scalarCode;
      }

      case Op::Literal:
        return printLiteral(n);

      case Op::Binary: {
        const std::string a = emitScalar(n.args[0]);
        const std::string b = emitScalar(n.args[1]);
        if (n.bin == ir::BinOp::Min || n.bin == ir::BinOp::Max) {
          const bool isInt =
              n.type->scalarKind() == ir::ScalarKind::Int;
          const char* fn = (n.bin == ir::BinOp::Min)
                               ? (isInt ? "lifta_imin" : "fmin")
                               : (isInt ? "lifta_imax" : "fmax");
          return std::string(fn) + "(" + a + ", " + b + ")";
        }
        return "(" + a + " " + binOpToken(n.bin) + " " + b + ")";
      }

      case Op::Unary: {
        const std::string a = emitScalar(n.args[0]);
        return (n.un == ir::UnOp::Neg ? "(-" : "(!") + a + ")";
      }

      case Op::Select: {
        const std::string c = emitScalar(n.args[0]);
        const std::string t = emitScalar(n.args[1]);
        const std::string f = emitScalar(n.args[2]);
        return "(" + c + " ? " + t + " : " + f + ")";
      }

      case Op::Cast: {
        const std::string a = emitScalar(n.args[0]);
        return "((" + ir::cTypeName(n.type->scalarKind(), realName()) + ")" +
               a + ")";
      }

      case Op::UserFunCall: {
        usedFuns_[n.userFun->name] = n.userFun;
        std::vector<std::string> args;
        for (const auto& a : n.args) args.push_back(emitScalar(a));
        return n.userFun->name + "(" + join(args, ", ") + ")";
      }

      case Op::Get: {
        // Projection of a zipped element or a constructed tuple.
        if (n.args[0]->op == Op::MakeTuple) {
          return emitScalar(
              n.args[0]->args[static_cast<std::size_t>(n.tupleIndex)]);
        }
        const ViewPtr v =
            view::tupleComponentView(viewOf(n.args[0]), n.tupleIndex);
        return loadCode(v);
      }

      case Op::ArrayAccess: {
        const ViewPtr v =
            view::accessView(viewOf(n.args[0]), indexExpr(n.args[1]));
        return loadCode(v);
      }

      case Op::Let: {
        emitLet(e);
        return emitScalar(n.args[2]);
      }

      case Op::Reduce:
        return emitReduce(e);

      case Op::WriteTo: {
        // Scalar in-place update: dest is an element position.
        const std::string value = emitScalar(n.args[1]);
        const ViewPtr destView = viewOf(n.args[0]);
        const std::string lhs = storeCode(destView);
        stmt(lhs + " = " + value + ";");
        return lhs;
      }

      default:
        throw CodegenError("expression is not scalar-emittable: op #" +
                           std::to_string(static_cast<int>(n.op)));
    }
  }

  /// Emits `val name = value` bindings. Scalar values become C locals;
  /// array values are materialized into private arrays (compile-time extent,
  /// e.g. the per-branch ODE state copies of FD-MM, Listing 4's _g1/_v2).
  void emitLet(const ExprPtr& e) {
    const Node& n = *e;
    const ExprPtr& binder = n.args[0];
    const ExprPtr& value = n.args[1];
    declareLocal(binder->name);
    if (value->type->isScalar()) {
      const std::string code = emitScalar(value);
      stmt("const " +
           ir::cTypeName(value->type->scalarKind(), realName()) + " " +
           binder->name + " = " + code + ";");
      env_[binder.get()] = Binding{nullptr, binder->name};
      return;
    }
    if (value->type->isArray()) {
      // Lazy values (views over existing memory) bind directly — no copy.
      switch (value->op) {
        case Op::Param:
        case Op::Zip:
        case Op::Slide:
        case Op::Pad:
        case Op::Split:
        case Op::Join:
        case Op::Transpose:
        case Op::Slide3:
        case Op::Pad3:
        case Op::Iota:
        case Op::Get:
        case Op::ArrayAccess:
        case Op::ArrayCons:
          env_[binder.get()] = Binding{viewOf(value), ""};
          return;
        default:
          break;
      }
      const arith::Expr count = value->type->flatCount();
      if (!count.isConst()) {
        throw CodegenError(
            "private array '" + binder->name +
            "' must have a compile-time extent, got " + count.toString());
      }
      stmt(ir::cTypeName(value->type->scalarElem()->scalarKind(), realName()) +
           " " + binder->name + "[" + std::to_string(count.constValue()) +
           "];");
      emitArray(value, view::memView(binder->name, value->type));
      env_[binder.get()] = Binding{view::memView(binder->name, value->type),
                                   ""};
      return;
    }
    throw CodegenError("let of tuple values is not supported");
  }

  std::string emitReduce(const ExprPtr& e) {
    const Node& n = *e;
    const std::string acc = fresh("acc");
    declareLocal(acc);
    const std::string initCode = emitScalar(n.args[0]);
    stmt(ir::cTypeName(n.type->scalarKind(), realName()) + " " + acc + " = " +
         initCode + ";");

    const ExprPtr& input = n.args[1];
    const std::string iv = fresh("r");
    const arith::Expr len = subst(input->type->size());
    open("for (long " + iv + " = 0; " + iv + " < " + len.toString() + "; ++" +
         iv + ")");
    enterLoopDomain(iv, len);
    bindElement(n.lambda->params[1], input, arith::Expr::var(iv));
    env_[n.lambda->params[0].get()] = Binding{nullptr, acc};
    const std::string bodyCode = emitScalar(n.lambda->body);
    stmt(acc + " = " + bodyCode + ";");
    close();
    return acc;
  }

  // --- index conversion ----------------------------------------------------

  /// Converts a scalar Int IR expression into a symbolic index. Simple
  /// expressions translate structurally; anything else is materialized into
  /// a local so the view algebra only ever sees well-formed terms.
  arith::Expr indexExpr(const ExprPtr& e) {
    const Node& n = *e;
    switch (n.op) {
      case Op::Literal:
        if (n.literalKind == ir::ScalarKind::Int) {
          return arith::Expr(static_cast<std::int64_t>(n.literalValue));
        }
        break;
      case Op::Param: {
        const std::string code = emitScalar(e);
        if (isIdentifier(code)) return arith::Expr::var(code);
        if (isDecimalInteger(code)) {
          return arith::Expr(static_cast<std::int64_t>(std::stoll(code)));
        }
        break;
      }
      case Op::Binary: {
        switch (n.bin) {
          case ir::BinOp::Add:
            return indexExpr(n.args[0]) + indexExpr(n.args[1]);
          case ir::BinOp::Sub:
            return indexExpr(n.args[0]) - indexExpr(n.args[1]);
          case ir::BinOp::Mul:
            return indexExpr(n.args[0]) * indexExpr(n.args[1]);
          case ir::BinOp::Div:
            return indexExpr(n.args[0]) / indexExpr(n.args[1]);
          default:
            break;
        }
        break;
      }
      default:
        break;
    }
    // Fallback: evaluate once into a local index variable.
    const std::string code = emitScalar(e);
    const std::string tmp = fresh("ix");
    declareLocal(tmp);
    stmt("const long " + tmp + " = " + code + ";");
    return arith::Expr::var(tmp);
  }

  // --- input views ----------------------------------------------------------

  /// Builds the input view of a "lazy" expression (one that describes data
  /// without computing it). Non-lazy inputs must be bound through Let.
  ViewPtr viewOf(const ExprPtr& e) {
    const Node& n = *e;
    switch (n.op) {
      case Op::Param: {
        auto it = env_.find(&n);
        if (it == env_.end() || !it->second.view) {
          throw CodegenError("parameter '" + n.name +
                             "' is not bound to a view");
        }
        return it->second.view;
      }
      case Op::Zip: {
        std::vector<ViewPtr> children;
        children.reserve(n.args.size());
        for (const auto& a : n.args) children.push_back(viewOf(a));
        return view::zipView(std::move(children), n.type);
      }
      case Op::Slide:
        return view::slideView(viewOf(n.args[0]), n.size1, n.size2);
      case Op::Pad:
        return view::padView(viewOf(n.args[0]), n.size1, n.size2, n.padMode);
      case Op::Split:
        return view::splitView(viewOf(n.args[0]), n.size1);
      case Op::Join:
        return view::joinView(viewOf(n.args[0]));
      case Op::Transpose:
        return view::transposeView(viewOf(n.args[0]));
      case Op::Slide3:
        return view::slide3View(viewOf(n.args[0]), n.size1, n.size2);
      case Op::Pad3:
        return view::pad3View(viewOf(n.args[0]), n.size1, n.padMode);
      case Op::Iota:
        return view::iotaView(n.size1);
      case Op::Get:
        return view::tupleComponentView(viewOf(n.args[0]), n.tupleIndex);
      case Op::ArrayAccess:
        return view::accessView(viewOf(n.args[0]), indexExpr(n.args[1]));
      case Op::WriteTo:
        return viewOf(n.args[0]);
      case Op::ArrayCons:
        return view::constantView(emitScalar(n.args[0]), n.type);
      default:
        throw CodegenError(
            "expression cannot be used as a view; materialize it with Let "
            "(op #" + std::to_string(static_cast<int>(n.op)) + ")");
    }
  }

  /// Binds a lambda parameter to the `index`-th element of `input`.
  void bindElement(const ExprPtr& paramNode, const ExprPtr& input,
                   const arith::Expr& index) {
    const Node& in = *input;
    if (in.op == Op::Iota) {
      // The element of an index range *is* the loop index; binding the raw
      // index keeps generated subscripts clean (G[(g_0 + M*b)] rather than
      // a chain of cast temporaries).
      env_[paramNode.get()] = Binding{nullptr, index.toString()};
      return;
    }
    if (in.op == Op::ArrayCons) {
      env_[paramNode.get()] = Binding{nullptr, emitScalar(in.args[0])};
      return;
    }
    const ViewPtr elem = view::accessView(viewOf(input), index);
    if (elem->type->isScalar()) {
      // Keep scalars as views so repeated uses re-resolve to the same load;
      // the host compiler CSEs them.
      env_[paramNode.get()] = Binding{elem, ""};
    } else {
      env_[paramNode.get()] = Binding{elem, ""};
    }
  }

  // --- array emission --------------------------------------------------------

  /// Emits an array-typed (or effect-only) expression into `dest`.
  /// `dest == nullptr` means the value is produced purely for its WriteTo
  /// side effects.
  void emitArray(const ExprPtr& e, ViewPtr dest) {
    const Node& n = *e;
    switch (n.op) {
      case Op::Map:
        emitMap(e, std::move(dest));
        return;

      case Op::Concat: {
        if (!dest) throw CodegenError("Concat requires a destination");
        arith::Expr offset(0);
        for (const auto& child : n.args) {
          if (child->op == Op::Skip) {
            // Table I: Skip generates no code; it only advances the offset.
            offset = offset + child->type->size();
            continue;
          }
          emitArray(child, view::offsetView(dest, offset));
          offset = offset + child->type->size();
        }
        return;
      }

      case Op::ArrayCons: {
        if (!dest) throw CodegenError("ArrayCons requires a destination");
        const std::string code = emitScalar(n.args[0]);
        if (n.size1.isConst(1)) {
          const ViewPtr slot = view::accessView(dest, arith::Expr(0));
          stmt(storeCode(slot) + " = " + code + ";");
          return;
        }
        const arith::Expr consLen = subst(n.size1);
        const std::string iv = fresh("i");
        open("for (long " + iv + " = 0; " + iv + " < " + consLen.toString() +
             "; ++" + iv + ")");
        enterLoopDomain(iv, consLen);
        const ViewPtr slot = view::accessView(dest, arith::Expr::var(iv));
        stmt(storeCode(slot) + " = " + code + ";");
        close();
        return;
      }

      case Op::WriteTo: {
        // Redirect output into the destination's own memory (§IV-B:
        // "sets the outputView of the second argument to the inputView of
        // the first argument").
        const ViewPtr redirected = viewOf(n.args[0]);
        if (n.args[1]->type->isScalar()) {
          emitScalar(e);
          return;
        }
        emitArray(n.args[1], redirected);
        return;
      }

      case Op::Skip:
        throw CodegenError("Skip may only appear inside Concat");

      case Op::Let:
        emitLet(e);
        emitArray(n.args[2], std::move(dest));
        return;

      case Op::MakeTuple: {
        for (const auto& comp : n.args) emitComponent(comp);
        return;
      }

      default:
        throw CodegenError("array expression cannot be emitted: op #" +
                           std::to_string(static_cast<int>(n.op)));
    }
  }

  /// A tuple component in effect position: scalar WriteTo or nested
  /// effect-only arrays (Listing 8's Tuple of WriteTo results).
  void emitComponent(const ExprPtr& comp) {
    if (comp->type->isScalar()) {
      emitScalar(comp);  // statements (if any) already emitted
      return;
    }
    emitArray(comp, nullptr);
  }

  void emitMap(const ExprPtr& e, ViewPtr dest) {
    const Node& n = *e;
    const ExprPtr& input = n.args[0];
    // Substituted before the straight-line check below; the summarizer
    // substitutes at the same point, so both validation walks make the
    // same structural choice.
    const arith::Expr len = subst(input->type->size());
    const ExprPtr& bodyExpr = n.lambda->body;

    // Collapsed in-place mode (paper §IV-B2): the lambda produces, via
    // Concat/Skip, an array that *types* as the whole destination; every
    // iteration then writes into the same buffer rather than into row i.
    const bool collapsed =
        dest != nullptr && bodyExpr->type != nullptr &&
        bodyExpr->type->isArray() && ir::typeEquals(dest->type, bodyExpr->type);

    // A sequential map over a single element (the ArrayCons(x, 1) idiom of
    // §IV-B2) is emitted straight-line, matching the paper's generated code.
    if (n.mapKind == ir::MapKind::Seq && len.isConst(1)) {
      emitMapIteration(n, dest, collapsed, arith::Expr(0));
      return;
    }

    std::string iv;
    if (n.mapKind == ir::MapKind::Glb) {
      iv = fresh("g");
      declareLocal(iv);
      const std::string d = std::to_string(n.mapDim);
      if (opts_.chunkSchedule && n.mapDim == 0) {
        // Contiguous-chunk schedule: work item i covers the index range
        // [i*c, min((i+1)*c, len)) with c = max(ceil(len/gsz), chunk).
        // gsz*c >= len and the ranges are disjoint, so every launch
        // geometry covers [0, len) exactly once — the host may (and does)
        // shrink the launch to ~ceil(len/chunk) items to cut per-item
        // dispatch overhead.
        usedChunk_ = true;
        const std::string len_s = len.toString();
        const std::string c = std::to_string(opts_.chunk);
        stmt("const long " + iv + "_n = get_global_size(ctx, 0);");
        stmt("long " + iv + "_c = (" + len_s + " + " + iv + "_n - 1) / " +
             iv + "_n;");
        stmt("if (" + iv + "_c < " + c + ") " + iv + "_c = " + c + ";");
        stmt("const long " + iv + "_lo = get_global_id(ctx, 0) * " + iv +
             "_c;");
        stmt("const long " + iv + "_hi = lifta_imin(" + iv + "_lo + " + iv +
             "_c, " + len_s + ");");
        open("for (long " + iv + " = " + iv + "_lo; " + iv + " < " + iv +
             "_hi; ++" + iv + ")");
      } else {
        open("for (long " + iv + " = get_global_id(ctx, " + d + "); " + iv +
             " < " + len.toString() + "; " + iv +
             " += get_global_size(ctx, " + d + "))");
      }
    } else if (n.mapKind == ir::MapKind::Seq) {
      iv = fresh("i");
      declareLocal(iv);
      open("for (long " + iv + " = 0; " + iv + " < " + len.toString() +
           "; ++" + iv + ")");
    } else {
      throw CodegenError("MapWrg/MapLcl require local-memory support, which "
                         "the barrier-free generator does not emit");
    }
    enterLoopDomain(iv, len);
    emitMapIteration(n, dest, collapsed, arith::Expr::var(iv));
    close();
  }

  void emitMapIteration(const Node& n, const ViewPtr& dest, bool collapsed,
                        const arith::Expr& index) {
    const ExprPtr& input = n.args[0];
    const ExprPtr& bodyExpr = n.lambda->body;
    bindElement(n.lambda->params[0], input, index);

    if (bodyExpr->type->isScalar()) {
      const std::string code = emitScalar(bodyExpr);
      if (dest) {
        const ViewPtr slot = view::accessView(dest, index);
        stmt(storeCode(slot) + " = " + code + ";");
      }
      // Without a destination the body must act through WriteTo; its
      // statements were already emitted.
    } else if (bodyExpr->type->isTuple()) {
      if (bodyExpr->op == Op::MakeTuple) {
        for (const auto& comp : bodyExpr->args) emitComponent(comp);
      } else if (bodyExpr->op == Op::Let) {
        emitArray(bodyExpr, nullptr);
      } else {
        throw CodegenError("tuple-typed map body must be a Tuple or Let");
      }
    } else {
      // Array-typed body.
      ViewPtr elementDest;
      if (collapsed) {
        elementDest = dest;
      } else if (dest) {
        elementDest = view::accessView(dest, index);
      }
      emitArray(bodyExpr, elementDest);
    }
  }

  // --- kernel assembly -------------------------------------------------------

  void emitUnpack(const memory::MemoryPlan& plan) {
    // The kernel ABI never passes the same buffer through two array slots,
    // so the optimizer may promise the compiler non-aliasing pointers.
    const std::string rq = opts_.restrictPointers ? "__restrict " : "";
    for (std::size_t i = 0; i < plan.args.size(); ++i) {
      const auto& a = plan.args[i];
      if (a.isArray) {
        const std::string ty =
            ir::cTypeName(a.type->scalarElem()->scalarKind(), realName());
        const std::string cv = a.writable ? "" : "const ";
        stmt(cv + ty + "* " + rq + a.name + " = (" + cv + ty +
             "*)lifta_args[" + std::to_string(i) + "];");
      } else {
        const std::string ty =
            ir::cTypeName(a.type->scalarKind(), realName());
        stmt("const " + ty + " " + a.name + " = *(const " + ty +
             "*)lifta_args[" + std::to_string(i) + "];");
      }
      varLevel_[a.name] = 0;
    }
  }

  std::string assemble(const GeneratedKernel& k) {
    std::ostringstream src;
    src << "// generated by lift-acoustics from LIFT IR — do not edit\n";
    if (!opts_.spec.empty()) {
      // The digest makes the specialization part of the JIT content hash
      // even when substitution happens to leave the body text unchanged.
      src << "// specialized: " << opts_.spec.digest() << "\n";
    }
    src << kernelPreamble(def_.real);
    for (const auto& [name, fn] : usedFuns_) {
      src << "static inline "
          << ir::cTypeName(fn->returnType->scalarKind(), "real") << " " << name
          << "(";
      std::vector<std::string> ps;
      for (std::size_t i = 0; i < fn->paramNames.size(); ++i) {
        ps.push_back(ir::cTypeName(fn->paramTypes[i]->scalarKind(), "real") +
                     " " + fn->paramNames[i]);
      }
      src << join(ps, ", ") << ") { " << fn->body << " }\n";
    }
    src << "\n#ifdef __cplusplus\nextern \"C\"\n#endif\n";
    src << "void " << def_.name
        << "(void** lifta_args, const lifta_wi_ctx* ctx) {\n";
    src << "  (void)ctx;\n";
    src << indent(k.body, 2);
    src << "}\n";
    return src.str();
  }

  const memory::KernelDef& def_;
  CodegenOptions opts_;
  analysis::Prover prover_;
  std::map<const Node*, Binding> env_;
  std::map<std::string, ir::UserFunPtr> usedFuns_;
  std::set<std::string> declared_;
  std::map<std::string, int> varLevel_;  // name -> loop level it lives at
  std::vector<Scope> scopes_;
  bool usedChunk_ = false;
  int counter_ = 0;
};

}  // namespace

std::string kernelPreamble(ir::ScalarKind real) {
  LIFTA_CHECK(real == ir::ScalarKind::Float || real == ir::ScalarKind::Double,
              "kernel precision must be Float or Double");
  std::string s;
  s += "#include <math.h>\n\n";
  s += std::string("typedef ") +
       (real == ir::ScalarKind::Float ? "float" : "double") + " real;\n\n";
  s +=
      "typedef struct {\n"
      "  long gid[3]; long gsz[3]; long lid[3]; long lsz[3];\n"
      "  long wg[3]; long nwg[3];\n"
      "} lifta_wi_ctx;\n\n"
      "static inline long get_global_id(const lifta_wi_ctx* c, int d) { "
      "return c->gid[d]; }\n"
      "static inline long get_global_size(const lifta_wi_ctx* c, int d) { "
      "return c->gsz[d]; }\n"
      "static inline long get_local_id(const lifta_wi_ctx* c, int d) { "
      "return c->lid[d]; }\n"
      "static inline long get_local_size(const lifta_wi_ctx* c, int d) { "
      "return c->lsz[d]; }\n"
      "static inline long get_group_id(const lifta_wi_ctx* c, int d) { "
      "return c->wg[d]; }\n"
      "static inline long get_num_groups(const lifta_wi_ctx* c, int d) { "
      "return c->nwg[d]; }\n"
      "static inline long lifta_imin(long a, long b) { return a < b ? a : b; "
      "}\n"
      "static inline long lifta_imax(long a, long b) { return a > b ? a : b; "
      "}\n"
      "static inline long min(long a, long b) { return a < b ? a : b; }\n"
      "static inline long max(long a, long b) { return a > b ? a : b; }\n\n";
  return s;
}

CodegenOptions CodegenOptions::fromEnv() {
  CodegenOptions o;
  const char* v = std::getenv("LIFTA_CODEGEN_OPT");
  if (v != nullptr && std::string(v) == "0") o.optimize = false;
  return o;
}

GeneratedKernel generateKernel(const memory::KernelDef& def,
                               const CodegenOptions& opts) {
  Emitter emitter(def, opts);
  GeneratedKernel out = emitter.run();
  if (!opts.spec.empty()) {
    out.specDigest = opts.spec.digest();
    out.buildFlags = "-O3";  // the optimizing tier; see GeneratedKernel doc
  }
  // Static verification runs after emission so malformed IR keeps reporting
  // CodegenError; only well-formed kernels reach the bounds/race provers.
  analysis::verifyKernel(def);
  // Translation validation: re-derive the optimizer's index simplification
  // and guard elimination on a store-summary level and prove the optimized
  // emission equivalent to the unoptimized one. Only the simplify pass
  // changes what the program computes (CSE/chunk/restrict are naming,
  // schedule and ABI decisions), so the gate keys on it. Specialized
  // kernels validate under the same substitution on both walks — the gate
  // then covers the specialization pass too (DESIGN.md §12).
  if (opts.optimize && opts.simplify) {
    analysis::verifyTranslation(def, opts.spec);
  }
  return out;
}

GeneratedKernel generateKernel(const memory::KernelDef& def) {
  return generateKernel(def, CodegenOptions::fromEnv());
}

}  // namespace lifta::codegen
