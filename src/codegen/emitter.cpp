#include "codegen/emitter.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace lifta::codegen {

namespace {

class CEmitter final : public KernelEmitter {
 public:
  std::string name() const override { return "c"; }
  bool available() const override { return true; }
  GeneratedKernel emit(const memory::KernelDef& def,
                       const CodegenOptions& opts) const override {
    return generateKernel(def, opts);
  }
};

#if defined(LIFTA_WITH_LLVM)
// Placeholder for the in-process LLVM ORC backend (ROADMAP item 2). The
// build-system seam exists so enabling the option is a pure backend task:
// implement emit() against the ORC LLJIT API, flip available(), and the
// tier machinery picks it up through the registry.
class OrcEmitter final : public KernelEmitter {
 public:
  std::string name() const override { return "llvm-orc"; }
  bool available() const override { return false; }
  GeneratedKernel emit(const memory::KernelDef&,
                       const CodegenOptions&) const override {
    throw CodegenError(
        "llvm-orc emitter is a placeholder: built with LIFTA_WITH_LLVM but "
        "the ORC lowering is not implemented yet (use the 'c' backend)");
  }
};
#endif

}  // namespace

const KernelEmitter& cEmitter() {
  static const CEmitter e;
  return e;
}

std::vector<const KernelEmitter*> emitters() {
  std::vector<const KernelEmitter*> all;
  all.push_back(&cEmitter());
#if defined(LIFTA_WITH_LLVM)
  static const OrcEmitter orc;
  all.push_back(&orc);
#endif
  return all;
}

const KernelEmitter* findEmitter(const std::string& name) {
  for (const KernelEmitter* e : emitters()) {
    if (e->name() == name) return e;
  }
  return nullptr;
}

const KernelEmitter& defaultEmitter() {
  const char* want = std::getenv("LIFTA_EMITTER");
  if (want != nullptr && *want != '\0') {
    const KernelEmitter* e = findEmitter(want);
    if (e != nullptr && e->available()) return *e;
    std::fprintf(stderr,
                 "lifta: LIFTA_EMITTER=%s is %s; using the 'c' backend\n",
                 want, e == nullptr ? "unknown" : "unavailable");
  }
  return cEmitter();
}

}  // namespace lifta::codegen
