// Pluggable kernel-emitter backends (ROADMAP item 2 groundwork).
//
// generateKernel() is the portable C reference backend: it lowers a
// KernelDef to a C source string the simulated OpenCL runtime JIT-compiles
// with the system compiler. A KernelEmitter wraps one such lowering
// strategy behind a uniform interface so alternative backends — notably an
// in-process LLVM ORC JIT that skips the compiler subprocess entirely —
// can slot in without touching callers. Every backend must produce kernels
// with the uniform `void <name>(void** lifta_args, const lifta_wi_ctx*)`
// ABI and bit-identical numerics to the C reference backend.
//
// The ORC backend itself is future work; this header fixes the seam. It is
// compiled in (as an explicitly-unavailable placeholder) only when the
// off-by-default LIFTA_WITH_LLVM CMake option is set, so the default build
// carries no LLVM dependency.
#pragma once

#include <string>
#include <vector>

#include "codegen/kernel_codegen.hpp"

namespace lifta::codegen {

class KernelEmitter {
 public:
  virtual ~KernelEmitter() = default;

  /// Stable backend identifier ("c", "llvm-orc").
  virtual std::string name() const = 0;

  /// True when the backend can actually emit in this build (the C backend
  /// always can; the ORC placeholder reports false until implemented).
  virtual bool available() const = 0;

  /// Lowers the kernel under the given options. Unavailable backends throw
  /// CodegenError. Must honour CodegenOptions::spec the same way the C
  /// backend does: constants fold into index algebra only, and the result
  /// passes the translation-validation gate.
  virtual GeneratedKernel emit(const memory::KernelDef& def,
                               const CodegenOptions& opts) const = 0;
};

/// The portable C reference backend (always available).
const KernelEmitter& cEmitter();

/// All registered backends, reference backend first.
std::vector<const KernelEmitter*> emitters();

/// Backend by name, nullptr when unknown.
const KernelEmitter* findEmitter(const std::string& name);

/// The backend the pipeline uses: LIFTA_EMITTER names one explicitly
/// (unknown or unavailable names fall back with a stderr warning),
/// otherwise the C reference backend.
const KernelEmitter& defaultEmitter();

}  // namespace lifta::codegen
