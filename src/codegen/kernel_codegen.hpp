// OpenCL-style C kernel generation from LIFT IR (paper §III-A, §IV-B).
//
// The generator lowers a type-checked KernelDef into a single self-contained
// C/C++ source string with a uniform ABI:
//
//   extern "C" void <name>(void** lifta_args, const lifta_wi_ctx* ctx);
//
// where lifta_args holds the kernel arguments in MemoryPlan order (array
// arguments as raw pointers, scalars by pointer to a value slot) and ctx
// carries the OpenCL work-item identity (get_global_id & friends are
// provided as inline helpers over ctx). The simulated OpenCL runtime
// (src/ocl) JIT-compiles this source and invokes the entry per work-item.
//
// Codegen is destination-passing: array-typed expressions are emitted into
// an output *view*; the paper's WriteTo/Concat/Skip/ArrayCons primitives act
// purely by rewriting that view (offsetting, aliasing), which reproduces the
// in-place scattered updates of §IV-B without touching the loop emitter.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "memory/allocator.hpp"
#include "memory/kernel_def.hpp"
#include "memory/specialization.hpp"
#include "view/view.hpp"

namespace lifta::codegen {

/// Switches for the optimizer pipeline that runs between view resolution and
/// C emission. All passes are value-preserving: optimized kernels produce
/// bit-identical outputs to the unoptimized generator (enforced by
/// tests/codegen/test_codegen_opt.cpp). `fromEnv()` honours
/// LIFTA_CODEGEN_OPT=0 as a global opt-out.
struct CodegenOptions {
  bool optimize = true;         // master switch; false reproduces the
                                // pre-optimizer generator byte-for-byte
  bool simplify = true;         // prover-backed index simplification +
                                // proven-guard elimination
  bool cse = true;              // named locals for shared index terms,
                                // loop-invariant terms hoisted per level
  bool chunkSchedule = true;    // contiguous-chunk work distribution for
                                // global (Glb) dimension-0 loops
  bool restrictPointers = true; // __restrict on array arguments
  int chunk = 64;               // minimum items per work-item under
                                // chunkSchedule

  /// Scalar parameters to bake as compile-time constants. Loop bounds,
  /// index algebra and pad guards re-simplify against the concrete values
  /// (divisions by runtime strides become divisions by literals), while
  /// data arithmetic is untouched — specialized kernels stay bit-identical
  /// to generic ones run with the same bound scalars. The kernel ABI is
  /// unchanged: specialized scalar slots are still unpacked, just unused.
  memory::Specialization spec;

  static CodegenOptions fromEnv();
};

struct GeneratedKernel {
  std::string name;
  std::string source;        // full compilable source (preamble + entry)
  std::string body;          // entry function body only (golden tests)
  memory::MemoryPlan plan;   // ABI argument order
  bool optimized = false;    // generated with CodegenOptions::optimize
  int preferredChunk = 0;    // >0: kernel self-schedules contiguous chunks
                             // of at least this many dim-0 items; hosts may
                             // shrink the launch to ~ceil(n/chunk) items
  /// Non-empty for constant-specialized kernels: the Specialization digest
  /// baked into the source header (and thereby the JIT cache key).
  std::string specDigest;
  /// Extra compiler flags the kernel should be built with (JIT appends them
  /// after its base flags, so a later -O level wins). Specialized kernels
  /// are the throughput tier and get the expensive -O3 pipeline — the
  /// literal trip counts and strides are what let its vectorizer and
  /// unroller actually fire — while generic tier-0 kernels keep the fast
  /// -O2 build for first-step latency. Never includes fast-math: per-lane
  /// IEEE semantics are what keep specialized output bit-identical.
  std::string buildFlags;
};

/// Generates a kernel. The body is type-checked internally.
/// Throws TypeError / CodegenError on malformed programs.
GeneratedKernel generateKernel(const memory::KernelDef& def);

/// As above with explicit optimizer options (the no-argument overload uses
/// CodegenOptions::fromEnv()).
GeneratedKernel generateKernel(const memory::KernelDef& def,
                               const CodegenOptions& opts);

/// The fixed source preamble (work-item context struct and id helpers)
/// shared by every generated kernel; exposed for the runtime's host-side
/// launcher, which must agree on the lifta_wi_ctx layout.
std::string kernelPreamble(ir::ScalarKind real);

}  // namespace lifta::codegen
