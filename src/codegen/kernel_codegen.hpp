// OpenCL-style C kernel generation from LIFT IR (paper §III-A, §IV-B).
//
// The generator lowers a type-checked KernelDef into a single self-contained
// C/C++ source string with a uniform ABI:
//
//   extern "C" void <name>(void** lifta_args, const lifta_wi_ctx* ctx);
//
// where lifta_args holds the kernel arguments in MemoryPlan order (array
// arguments as raw pointers, scalars by pointer to a value slot) and ctx
// carries the OpenCL work-item identity (get_global_id & friends are
// provided as inline helpers over ctx). The simulated OpenCL runtime
// (src/ocl) JIT-compiles this source and invokes the entry per work-item.
//
// Codegen is destination-passing: array-typed expressions are emitted into
// an output *view*; the paper's WriteTo/Concat/Skip/ArrayCons primitives act
// purely by rewriting that view (offsetting, aliasing), which reproduces the
// in-place scattered updates of §IV-B without touching the loop emitter.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "memory/allocator.hpp"
#include "memory/kernel_def.hpp"
#include "view/view.hpp"

namespace lifta::codegen {

struct GeneratedKernel {
  std::string name;
  std::string source;        // full compilable source (preamble + entry)
  std::string body;          // entry function body only (golden tests)
  memory::MemoryPlan plan;   // ABI argument order
};

/// Generates a kernel. The body is type-checked internally.
/// Throws TypeError / CodegenError on malformed programs.
GeneratedKernel generateKernel(const memory::KernelDef& def);

/// The fixed source preamble (work-item context struct and id helpers)
/// shared by every generated kernel; exposed for the runtime's host-side
/// launcher, which must agree on the lifta_wi_ctx layout.
std::string kernelPreamble(ir::ScalarKind real);

}  // namespace lifta::codegen
