#include "rewrite/rules.hpp"

#include "common/error.hpp"

namespace lifta::rewrite {

using ir::ExprPtr;
using ir::Node;
using ir::Op;

namespace {

/// Shallow-copies a node (children shared). Types are cleared so the
/// consumer's typecheck() recomputes them for the rebuilt spine.
ExprPtr cloneShallow(const ExprPtr& e) {
  auto n = std::make_shared<Node>(*e);
  if (n->op != Op::Param && n->op != Op::Literal && n->op != Op::Iota) {
    n->type = nullptr;
  }
  return n;
}

}  // namespace

ir::ExprPtr substituteParam(const ExprPtr& body, const ExprPtr& oldParam,
                            const ExprPtr& replacement) {
  if (body == oldParam) return replacement;
  bool changed = false;
  std::vector<ExprPtr> newArgs;
  newArgs.reserve(body->args.size());
  for (const auto& a : body->args) {
    ExprPtr s = substituteParam(a, oldParam, replacement);
    changed = changed || s != a;
    newArgs.push_back(std::move(s));
  }
  ir::LambdaPtr newLambda = body->lambda;
  if (body->lambda) {
    ExprPtr newBody =
        substituteParam(body->lambda->body, oldParam, replacement);
    if (newBody != body->lambda->body) {
      newLambda = std::make_shared<ir::Lambda>(*body->lambda);
      newLambda->body = newBody;
      changed = true;
    }
  }
  if (!changed) return body;
  ExprPtr out = cloneShallow(body);
  out->args = std::move(newArgs);
  out->lambda = std::move(newLambda);
  return out;
}

std::optional<ExprPtr> mapFusion(const ExprPtr& expr) {
  if (expr->op != Op::Map) return std::nullopt;
  const ExprPtr& inner = expr->args[0];
  if (inner->op != Op::Map) return std::nullopt;
  // Fuse when the inner map is sequential or both agree: the fused loop
  // inherits the outer map's parallelism.
  if (inner->mapKind != ir::MapKind::Seq &&
      (inner->mapKind != expr->mapKind || inner->mapDim != expr->mapDim)) {
    return std::nullopt;
  }

  // New parameter for the fused lambda; inherits the innermost input's
  // element (type filled by typecheck).
  auto fresh = ir::param("fused_x", nullptr);
  const ExprPtr innerApplied =
      substituteParam(inner->lambda->body, inner->lambda->params[0], fresh);
  const ExprPtr fusedBody =
      substituteParam(expr->lambda->body, expr->lambda->params[0],
                      innerApplied);

  ExprPtr out = cloneShallow(expr);
  out->lambda = ir::lambda({fresh}, fusedBody);
  out->args = {inner->args[0]};
  return out;
}

std::optional<ExprPtr> splitJoinIdentity(const ExprPtr& expr) {
  // Join(Split(n, x)) → x
  if (expr->op == Op::Join && expr->args[0]->op == Op::Split) {
    return expr->args[0]->args[0];
  }
  // Split(n, Join(x)) → x when x : [[T]_n]_m
  if (expr->op == Op::Split && expr->args[0]->op == Op::Join) {
    const ExprPtr& joined = expr->args[0]->args[0];
    if (joined->type != nullptr && joined->type->isArray() &&
        joined->type->elem()->isArray() &&
        joined->type->elem()->size() == expr->size1) {
      return joined;
    }
  }
  return std::nullopt;
}

std::optional<ExprPtr> lowerOuterMapToGlb(const ExprPtr& expr, int dim) {
  if (expr->op != Op::Map || expr->mapKind != ir::MapKind::Seq) {
    return std::nullopt;
  }
  ExprPtr out = cloneShallow(expr);
  out->mapKind = ir::MapKind::Glb;
  out->mapDim = dim;
  return out;
}

std::pair<ExprPtr, int> applyBottomUp(const Rule& rule, const ExprPtr& expr) {
  int count = 0;
  // Rewrite children first.
  bool changed = false;
  std::vector<ExprPtr> newArgs;
  newArgs.reserve(expr->args.size());
  for (const auto& a : expr->args) {
    auto [sub, c] = applyBottomUp(rule, a);
    count += c;
    changed = changed || sub != a;
    newArgs.push_back(std::move(sub));
  }
  ir::LambdaPtr newLambda = expr->lambda;
  if (expr->lambda) {
    auto [sub, c] = applyBottomUp(rule, expr->lambda->body);
    count += c;
    if (sub != expr->lambda->body) {
      newLambda = std::make_shared<ir::Lambda>(*expr->lambda);
      newLambda->body = sub;
      changed = true;
    }
  }
  ExprPtr current = expr;
  if (changed) {
    current = cloneShallow(expr);
    current->args = std::move(newArgs);
    current->lambda = std::move(newLambda);
  }
  if (auto rewritten = rule(current)) {
    ++count;
    return {*rewritten, count};
  }
  return {current, count};
}

ir::ExprPtr normalize(const ExprPtr& expr) {
  ExprPtr current = expr;
  for (int iter = 0; iter < 32; ++iter) {
    auto [next, count] = applyBottomUp(splitJoinIdentity, current);
    current = next;
    if (count == 0) return current;
  }
  throw Error("normalize did not reach a fixpoint");
}

}  // namespace lifta::rewrite
