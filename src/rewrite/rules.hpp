// Semantic-preserving rewrite rules (paper §III: "The LIFT internal
// representation is optimized by applying semantic-preserving rewrite rules
// encoding different optimization and implementation choices").
//
// This module implements the rule mechanism plus the rules the acoustics
// pipeline uses:
//   * map fusion         — Map(f) ∘ Map(g)  →  Map(f ∘ g)
//   * split/join identity — Join(Split(n, x)) → x, Split(n, Join(x)) → x
//   * lowering           — the outermost MapSeq becomes MapGlb(0), turning a
//                          declarative map into a GPU grid-stride loop.
//
// Rules are partial functions ExprPtr → optional<ExprPtr>; applyBottomUp
// walks the tree applying a rule everywhere it matches. Rewriting never
// mutates the input: matched nodes are rebuilt (and re-type-checked by the
// consumer), unmatched subtrees are shared.
#pragma once

#include <functional>
#include <optional>

#include "ir/expr.hpp"

namespace lifta::rewrite {

using Rule = std::function<std::optional<ir::ExprPtr>(const ir::ExprPtr&)>;

/// Replaces every reference to `oldParam` (by node identity) inside `body`
/// with `replacement`, rebuilding only the affected spine.
ir::ExprPtr substituteParam(const ir::ExprPtr& body, const ir::ExprPtr& oldParam,
                            const ir::ExprPtr& replacement);

/// Map(f) << (Map(g) << x)  →  Map(x' => f(g(x'))) << x.
/// Fuses only when both maps have the same MapKind or the inner is Seq.
std::optional<ir::ExprPtr> mapFusion(const ir::ExprPtr& expr);

/// Join(Split(n, x)) → x and Split(n, Join(x)) → x (when x's rows have
/// length n).
std::optional<ir::ExprPtr> splitJoinIdentity(const ir::ExprPtr& expr);

/// Rewrites the *outermost* Map of the expression from Seq to Glb(dim),
/// the lowering step that makes the kernel parallel. Returns nullopt when
/// the outermost node is not a sequential map.
std::optional<ir::ExprPtr> lowerOuterMapToGlb(const ir::ExprPtr& expr,
                                              int dim = 0);

/// Applies `rule` bottom-up across the whole expression once; returns the
/// rewritten expression and the number of sites rewritten.
std::pair<ir::ExprPtr, int> applyBottomUp(const Rule& rule,
                                          const ir::ExprPtr& expr);

/// Applies the identity-elimination rules to a fixpoint (bounded).
ir::ExprPtr normalize(const ir::ExprPtr& expr);

}  // namespace lifta::rewrite
