#include "view/view.hpp"

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace lifta::view {

namespace {
std::shared_ptr<View> make(ViewKind k) {
  auto v = std::make_shared<View>();
  v->kind = k;
  return v;
}
}  // namespace

ViewPtr memView(const std::string& name, ir::TypePtr type) {
  auto v = make(ViewKind::Mem);
  v->mem = name;
  v->type = std::move(type);
  return v;
}

ViewPtr accessView(ViewPtr inner, arith::Expr index) {
  LIFTA_CHECK(inner->type->isArray(), "accessView on non-array view");
  auto v = make(ViewKind::Access);
  v->type = inner->type->elem();
  v->children = {std::move(inner)};
  v->idx = std::move(index);
  return v;
}

ViewPtr zipView(std::vector<ViewPtr> inners, ir::TypePtr type) {
  auto v = make(ViewKind::Zip);
  v->children = std::move(inners);
  v->type = std::move(type);
  return v;
}

ViewPtr tupleComponentView(ViewPtr inner, int comp) {
  LIFTA_CHECK(inner->type->isTuple(), "tupleComponentView on non-tuple view");
  auto v = make(ViewKind::TupleComponent);
  v->type = inner->type->elems()[static_cast<std::size_t>(comp)];
  v->comp = comp;
  v->children = {std::move(inner)};
  return v;
}

ViewPtr slideView(ViewPtr inner, arith::Expr size, arith::Expr step) {
  LIFTA_CHECK(inner->type->isArray(), "slideView on non-array view");
  auto v = make(ViewKind::Slide);
  const arith::Expr count = (inner->type->size() - size) / step + arith::Expr(1);
  v->type = ir::Type::array(ir::Type::array(inner->type->elem(), size), count);
  v->a = std::move(size);
  v->b = std::move(step);
  v->children = {std::move(inner)};
  return v;
}

ViewPtr padView(ViewPtr inner, arith::Expr left, arith::Expr right,
                ir::PadMode mode) {
  LIFTA_CHECK(inner->type->isArray(), "padView on non-array view");
  auto v = make(ViewKind::Pad);
  v->type = ir::Type::array(inner->type->elem(),
                            inner->type->size() + left + right);
  v->a = std::move(left);
  v->b = std::move(right);
  v->padMode = mode;
  v->children = {std::move(inner)};
  return v;
}

ViewPtr splitView(ViewPtr inner, arith::Expr m) {
  LIFTA_CHECK(inner->type->isArray(), "splitView on non-array view");
  auto v = make(ViewKind::Split);
  v->type = ir::Type::array(ir::Type::array(inner->type->elem(), m),
                            inner->type->size() / m);
  v->a = std::move(m);
  v->children = {std::move(inner)};
  return v;
}

ViewPtr joinView(ViewPtr inner) {
  LIFTA_CHECK(inner->type->isArray() && inner->type->elem()->isArray(),
              "joinView requires a 2D view");
  auto v = make(ViewKind::Join);
  v->a = inner->type->elem()->size();
  v->type = ir::Type::array(inner->type->elem()->elem(),
                            inner->type->size() * v->a);
  v->children = {std::move(inner)};
  return v;
}

ViewPtr transposeView(ViewPtr inner) {
  LIFTA_CHECK(inner->type->isArray() && inner->type->elem()->isArray(),
              "transposeView requires a 2D view");
  auto v = make(ViewKind::Transpose);
  v->type = ir::Type::array(
      ir::Type::array(inner->type->elem()->elem(), inner->type->size()),
      inner->type->elem()->size());
  v->children = {std::move(inner)};
  return v;
}

ViewPtr slide3View(ViewPtr inner, arith::Expr size, arith::Expr step) {
  LIFTA_CHECK(inner->type->isArray() && inner->type->elem()->isArray() &&
                  inner->type->elem()->elem()->isArray(),
              "slide3View requires a 3D view");
  auto v = make(ViewKind::Slide3);
  const auto count = [&](const arith::Expr& dim) {
    return (dim - size) / step + arith::Expr(1);
  };
  const ir::TypePtr t = inner->type->elem()->elem()->elem();
  const ir::TypePtr window = ir::Type::array(
      ir::Type::array(ir::Type::array(t, size), size), size);
  v->type = ir::Type::array(
      ir::Type::array(
          ir::Type::array(window, count(inner->type->elem()->elem()->size())),
          count(inner->type->elem()->size())),
      count(inner->type->size()));
  v->a = std::move(size);
  v->b = std::move(step);
  v->children = {std::move(inner)};
  return v;
}

ViewPtr pad3View(ViewPtr inner, arith::Expr amount, ir::PadMode mode) {
  LIFTA_CHECK(inner->type->isArray() && inner->type->elem()->isArray() &&
                  inner->type->elem()->elem()->isArray(),
              "pad3View requires a 3D view");
  auto v = make(ViewKind::Pad3);
  const arith::Expr two = amount + amount;
  v->type = ir::Type::array(
      ir::Type::array(ir::Type::array(inner->type->elem()->elem()->elem(),
                                      inner->type->elem()->elem()->size() + two),
                      inner->type->elem()->size() + two),
      inner->type->size() + two);
  v->a = std::move(amount);
  v->padMode = mode;
  v->children = {std::move(inner)};
  return v;
}

ViewPtr offsetView(ViewPtr inner, arith::Expr offset) {
  auto v = make(ViewKind::Offset);
  v->type = inner->type;
  v->idx = std::move(offset);
  v->children = {std::move(inner)};
  return v;
}

ViewPtr iotaView(arith::Expr count) {
  auto v = make(ViewKind::Iota);
  v->type = ir::Type::array(ir::Type::int_(), std::move(count));
  return v;
}

ViewPtr constantView(const std::string& cExpr, ir::TypePtr type) {
  auto v = make(ViewKind::Constant);
  v->code = cExpr;
  v->type = std::move(type);
  return v;
}

ResolvedAccess resolveAccess(const ViewPtr& view, bool forStore) {
  std::vector<arith::Expr> idxStack;
  std::vector<int> tupleStack;
  ResolvedAccess out;
  ViewPtr v = view;

  auto pop = [&idxStack]() {
    LIFTA_CHECK(!idxStack.empty(), "view resolution: index stack underflow");
    arith::Expr e = idxStack.back();
    idxStack.pop_back();
    return e;
  };

  for (;;) {
    switch (v->kind) {
      case ViewKind::Access:
        idxStack.push_back(v->idx);
        v = v->children[0];
        break;

      case ViewKind::TupleComponent:
        tupleStack.push_back(v->comp);
        v = v->children[0];
        break;

      case ViewKind::Zip: {
        LIFTA_CHECK(!tupleStack.empty(),
                    "view resolution: zip without tuple projection");
        const int c = tupleStack.back();
        tupleStack.pop_back();
        v = v->children[static_cast<std::size_t>(c)];
        break;
      }

      case ViewKind::Slide: {
        const arith::Expr w = pop();  // window index (outer access)
        const arith::Expr u = pop();  // position within the window
        idxStack.push_back(w * v->b + u);
        v = v->children[0];
        break;
      }

      case ViewKind::Pad: {
        const arith::Expr i = pop();
        const arith::Expr adjusted = i - v->a;
        const arith::Expr innerSize = v->children[0]->type->size();
        if (v->padMode == ir::PadMode::Zero) {
          if (forStore) {
            throw CodegenError("zero-Pad cannot appear in an output view");
          }
          out.guards.push_back(AccessGuard{adjusted, innerSize});
          idxStack.push_back(adjusted);
        } else {
          idxStack.push_back(arith::min(
              arith::max(adjusted, arith::Expr(0)), innerSize - arith::Expr(1)));
        }
        v = v->children[0];
        break;
      }

      case ViewKind::Split: {
        const arith::Expr i = pop();  // row (outer)
        const arith::Expr j = pop();  // element within the row
        idxStack.push_back(i * v->a + j);
        v = v->children[0];
        break;
      }

      case ViewKind::Join: {
        const arith::Expr k = pop();
        // Subsequent consumers pop outer-first, so push row last.
        idxStack.push_back(k % v->a);
        idxStack.push_back(k / v->a);
        v = v->children[0];
        break;
      }

      case ViewKind::Transpose: {
        // transposed[i][j] == original[j][i]: swap the two top indices so
        // the inner view consumes (j, i) outer-first.
        const arith::Expr i = pop();
        const arith::Expr j = pop();
        idxStack.push_back(i);
        idxStack.push_back(j);
        v = v->children[0];
        break;
      }

      case ViewKind::Slide3: {
        // Pops (z', y', x', dz, dy, dx) outer-first, pushes the absolute
        // 3D position for the inner view (z on top).
        const arith::Expr z = pop();
        const arith::Expr y = pop();
        const arith::Expr x = pop();
        const arith::Expr dz = pop();
        const arith::Expr dy = pop();
        const arith::Expr dx = pop();
        idxStack.push_back(x * v->b + dx);
        idxStack.push_back(y * v->b + dy);
        idxStack.push_back(z * v->b + dz);
        v = v->children[0];
        break;
      }

      case ViewKind::Pad3: {
        const arith::Expr z = pop();
        const arith::Expr y = pop();
        const arith::Expr x = pop();
        const ViewPtr& inner = v->children[0];
        const arith::Expr sx = inner->type->elem()->elem()->size();
        const arith::Expr sy = inner->type->elem()->size();
        const arith::Expr sz = inner->type->size();
        const arith::Expr ax = x - v->a;
        const arith::Expr ay = y - v->a;
        const arith::Expr az = z - v->a;
        if (v->padMode == ir::PadMode::Zero) {
          if (forStore) {
            throw CodegenError("zero-Pad3 cannot appear in an output view");
          }
          out.guards.push_back(AccessGuard{az, sz});
          out.guards.push_back(AccessGuard{ay, sy});
          out.guards.push_back(AccessGuard{ax, sx});
          idxStack.push_back(ax);
          idxStack.push_back(ay);
          idxStack.push_back(az);
        } else {
          auto clamp = [](const arith::Expr& i, const arith::Expr& s) {
            return arith::min(arith::max(i, arith::Expr(0)),
                              s - arith::Expr(1));
          };
          idxStack.push_back(clamp(ax, sx));
          idxStack.push_back(clamp(ay, sy));
          idxStack.push_back(clamp(az, sz));
        }
        v = v->children[0];
        break;
      }

      case ViewKind::Offset: {
        const arith::Expr i = pop();
        idxStack.push_back(i + v->idx);
        v = v->children[0];
        break;
      }

      case ViewKind::Iota: {
        if (forStore) throw CodegenError("Iota cannot be written to");
        out.kind = ResolvedAccess::Kind::Iota;
        out.index = pop();
        return out;
      }

      case ViewKind::Constant: {
        if (forStore) throw CodegenError("constant view cannot be written to");
        out.kind = ResolvedAccess::Kind::Constant;
        out.code = v->code;
        return out;
      }

      case ViewKind::Mem: {
        // Consume the remaining indices against the buffer's (possibly
        // nested) array type, outermost dimension first.
        arith::Expr addr(0);
        ir::TypePtr t = v->type;
        while (t->isArray()) {
          const arith::Expr i = pop();
          addr = addr + i * t->elem()->flatCount();
          t = t->elem();
        }
        LIFTA_CHECK(idxStack.empty(),
                    "view resolution: leftover indices at memory view");
        if (forStore) {
          LIFTA_CHECK(out.guards.empty(),
                      "view resolution: guarded store is not representable");
        }
        out.kind = ResolvedAccess::Kind::Mem;
        out.mem = v->mem;
        out.index = addr;
        return out;
      }
    }
  }
}

namespace {

/// Shared string assembly for loads and stores: prints the structured access
/// exactly as the pre-optimizer generator did, so the opt-off path stays
/// byte-identical.
std::string printAccess(const ResolvedAccess& a, bool forStore,
                        const std::string& zeroLiteral) {
  auto wrap = [&](std::string load) {
    // Innermost guard first so the generated ternaries nest naturally.
    for (auto it = a.guards.rbegin(); it != a.guards.rend(); ++it) {
      const std::string adj = it->adjusted.toString();
      load = "((0 <= " + adj + " && " + adj + " < " + it->size.toString() +
             ") ? " + load + " : " + zeroLiteral + ")";
    }
    return load;
  };
  switch (a.kind) {
    case ResolvedAccess::Kind::Iota:
      return wrap("((int)(" + a.index.toString() + "))");
    case ResolvedAccess::Kind::Constant:
      return wrap(a.code);
    case ResolvedAccess::Kind::Mem: {
      const std::string access = a.mem + "[" + a.index.toString() + "]";
      return forStore ? access : wrap(access);
    }
  }
  return "";
}

}  // namespace

std::string resolveLoad(const ViewPtr& v, const std::string& zeroLiteral) {
  return printAccess(resolveAccess(v, /*forStore=*/false), false, zeroLiteral);
}

std::string resolveStore(const ViewPtr& v) {
  return printAccess(resolveAccess(v, /*forStore=*/true), true, "");
}

SymbolicAccess resolveSymbolic(const ViewPtr& view, int& guardCounter) {
  std::vector<arith::Expr> idxStack;
  std::vector<int> tupleStack;
  SymbolicAccess out;
  ViewPtr v = view;

  auto pop = [&idxStack]() {
    LIFTA_CHECK(!idxStack.empty(), "view resolution: index stack underflow");
    arith::Expr e = idxStack.back();
    idxStack.pop_back();
    return e;
  };

  // A zero-Pad guard brackets its component in [0, innerSize); representing
  // the component by a fresh variable with exactly that domain lets bounds
  // proofs assume the guard without any extra plumbing.
  auto guardVar = [&](const arith::Expr& actual, const arith::Expr& size) {
    const std::string name = "pad$" + std::to_string(guardCounter++);
    out.guards.push_back(SymbolicGuard{name, actual, size});
    return arith::Expr::var(name);
  };

  for (;;) {
    switch (v->kind) {
      case ViewKind::Access:
        idxStack.push_back(v->idx);
        v = v->children[0];
        break;

      case ViewKind::TupleComponent:
        tupleStack.push_back(v->comp);
        v = v->children[0];
        break;

      case ViewKind::Zip: {
        LIFTA_CHECK(!tupleStack.empty(),
                    "view resolution: zip without tuple projection");
        const int c = tupleStack.back();
        tupleStack.pop_back();
        v = v->children[static_cast<std::size_t>(c)];
        break;
      }

      case ViewKind::Slide: {
        const arith::Expr w = pop();
        const arith::Expr u = pop();
        idxStack.push_back(w * v->b + u);
        v = v->children[0];
        break;
      }

      case ViewKind::Pad: {
        const arith::Expr i = pop();
        const arith::Expr adjusted = i - v->a;
        const arith::Expr innerSize = v->children[0]->type->size();
        if (v->padMode == ir::PadMode::Zero) {
          idxStack.push_back(guardVar(adjusted, innerSize));
        } else {
          out.clamped = true;
          idxStack.push_back(arith::min(
              arith::max(adjusted, arith::Expr(0)), innerSize - arith::Expr(1)));
        }
        v = v->children[0];
        break;
      }

      case ViewKind::Split: {
        const arith::Expr i = pop();
        const arith::Expr j = pop();
        idxStack.push_back(i * v->a + j);
        v = v->children[0];
        break;
      }

      case ViewKind::Join: {
        const arith::Expr k = pop();
        idxStack.push_back(k % v->a);
        idxStack.push_back(k / v->a);
        v = v->children[0];
        break;
      }

      case ViewKind::Transpose: {
        const arith::Expr i = pop();
        const arith::Expr j = pop();
        idxStack.push_back(i);
        idxStack.push_back(j);
        v = v->children[0];
        break;
      }

      case ViewKind::Slide3: {
        const arith::Expr z = pop();
        const arith::Expr y = pop();
        const arith::Expr x = pop();
        const arith::Expr dz = pop();
        const arith::Expr dy = pop();
        const arith::Expr dx = pop();
        idxStack.push_back(x * v->b + dx);
        idxStack.push_back(y * v->b + dy);
        idxStack.push_back(z * v->b + dz);
        v = v->children[0];
        break;
      }

      case ViewKind::Pad3: {
        const arith::Expr z = pop();
        const arith::Expr y = pop();
        const arith::Expr x = pop();
        const ViewPtr& inner = v->children[0];
        const arith::Expr sx = inner->type->elem()->elem()->size();
        const arith::Expr sy = inner->type->elem()->size();
        const arith::Expr sz = inner->type->size();
        const arith::Expr ax = x - v->a;
        const arith::Expr ay = y - v->a;
        const arith::Expr az = z - v->a;
        if (v->padMode == ir::PadMode::Zero) {
          // Guard order matches resolve(): z, then y, then x.
          const arith::Expr gz = guardVar(az, sz);
          const arith::Expr gy = guardVar(ay, sy);
          const arith::Expr gx = guardVar(ax, sx);
          idxStack.push_back(gx);
          idxStack.push_back(gy);
          idxStack.push_back(gz);
        } else {
          out.clamped = true;
          auto clamp = [](const arith::Expr& i, const arith::Expr& s) {
            return arith::min(arith::max(i, arith::Expr(0)),
                              s - arith::Expr(1));
          };
          idxStack.push_back(clamp(ax, sx));
          idxStack.push_back(clamp(ay, sy));
          idxStack.push_back(clamp(az, sz));
        }
        v = v->children[0];
        break;
      }

      case ViewKind::Offset: {
        const arith::Expr i = pop();
        idxStack.push_back(i + v->idx);
        v = v->children[0];
        break;
      }

      case ViewKind::Iota: {
        out.kind = SymbolicAccess::Kind::Iota;
        out.index = pop();
        return out;
      }

      case ViewKind::Constant: {
        out.kind = SymbolicAccess::Kind::Constant;
        return out;
      }

      case ViewKind::Mem: {
        arith::Expr addr(0);
        ir::TypePtr t = v->type;
        while (t->isArray()) {
          const arith::Expr i = pop();
          addr = addr + i * t->elem()->flatCount();
          t = t->elem();
        }
        LIFTA_CHECK(idxStack.empty(),
                    "view resolution: leftover indices at memory view");
        out.kind = SymbolicAccess::Kind::Mem;
        out.mem = v->mem;
        out.index = addr;
        out.extent = v->type->flatCount();
        return out;
      }
    }
  }
}

std::string describe(const ViewPtr& v) {
  switch (v->kind) {
    case ViewKind::Mem:
      return "MemView(" + v->mem + ")";
    case ViewKind::Access:
      return "ArrayAccessView(" + v->idx.toString() + ", " +
             describe(v->children[0]) + ")";
    case ViewKind::Zip: {
      std::vector<std::string> parts;
      for (const auto& c : v->children) parts.push_back(describe(c));
      return "ZipView(" + join(parts, ", ") + ")";
    }
    case ViewKind::TupleComponent:
      return "TupleAccessView(" + std::to_string(v->comp) + ", " +
             describe(v->children[0]) + ")";
    case ViewKind::Slide:
      return "SlideView(" + v->a.toString() + ", " + v->b.toString() + ", " +
             describe(v->children[0]) + ")";
    case ViewKind::Pad:
      return "PadView(" + v->a.toString() + ", " + v->b.toString() + ", " +
             describe(v->children[0]) + ")";
    case ViewKind::Split:
      return "SplitView(" + v->a.toString() + ", " + describe(v->children[0]) +
             ")";
    case ViewKind::Join:
      return "JoinView(" + describe(v->children[0]) + ")";
    case ViewKind::Transpose:
      return "TransposeView(" + describe(v->children[0]) + ")";
    case ViewKind::Slide3:
      return "Slide3View(" + v->a.toString() + ", " + v->b.toString() + ", " +
             describe(v->children[0]) + ")";
    case ViewKind::Pad3:
      return "Pad3View(" + v->a.toString() + ", " + describe(v->children[0]) +
             ")";
    case ViewKind::Offset:
      return "ViewOffset(" + v->idx.toString() + ", " +
             describe(v->children[0]) + ")";
    case ViewKind::Iota:
      return "IotaView";
    case ViewKind::Constant:
      return "ConstantView(" + v->code + ")";
  }
  return "<?>";
}

}  // namespace lifta::view
