// The LIFT view system (§III-A of the paper, extended per §IV-B).
//
// A *view* is a compiler-intermediate description of where data lives and how
// an index into a logical value maps onto physical memory. Patterns like Zip,
// Slide, Pad, Split and Join never move data: they only wrap the view of
// their input. When the code generator reaches a scalar read or write, it
// *resolves* the accumulated view chain into a C index expression.
//
// This paper's additions appear here as:
//   OffsetView — created for each Concat argument; adds the sum of preceding
//                argument lengths to the written index (Table I: the output
//                view of mul3 is ViewAccess(i1, ViewOffset(N0, ViewMem(out))))
//   and the WriteTo semantics: the output view of WriteTo's value is simply
//   the *input* view of its destination, which is what makes updates land
//   in-place instead of in a freshly allocated buffer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arith/expr.hpp"
#include "ir/expr.hpp"  // for ir::PadMode
#include "ir/type.hpp"

namespace lifta::view {

enum class ViewKind {
  Mem,            // a named buffer (global or private memory)
  Access,         // array subscript with a symbolic index
  Zip,            // element-wise tuple of child views
  TupleComponent, // projection of a tuple view
  Slide,          // overlapping windows: (w, u) -> w*step + u
  Pad,            // index shift with zero-guard or clamping
  Split,          // (i, j) -> i*m + j
  Join,           // k -> (k/m, k%m)
  Transpose,      // (i, j) -> (j, i)
  Slide3,         // 3D neighborhoods: (z,y,x,dz,dy,dx) -> (z*s+dz, ...)
  Pad3,           // shift+guard on all three dimensions
  Offset,         // index shift by a symbolic offset (Concat/Skip)
  Iota,           // identity: the index itself is the value
  Constant,       // a fixed C expression, independent of the index
};

struct View;
using ViewPtr = std::shared_ptr<const View>;

struct View {
  ViewKind kind = ViewKind::Mem;
  ir::TypePtr type;               // type of the value this view describes

  std::vector<ViewPtr> children;  // Zip: all inputs; others: single input

  std::string mem;                // Mem: C identifier of the buffer
  std::string code;               // Constant: C expression text
  arith::Expr idx;                // Access index / Offset amount
  arith::Expr a;                  // Slide size / Pad left / Split m / Join m
  arith::Expr b;                  // Slide step / Pad right
  ir::PadMode padMode = ir::PadMode::Zero;
  int comp = 0;                   // TupleComponent index
};

// --- constructors ---
ViewPtr memView(const std::string& name, ir::TypePtr type);
ViewPtr accessView(ViewPtr inner, arith::Expr index);
ViewPtr zipView(std::vector<ViewPtr> inners, ir::TypePtr type);
ViewPtr tupleComponentView(ViewPtr inner, int comp);
ViewPtr slideView(ViewPtr inner, arith::Expr size, arith::Expr step);
ViewPtr padView(ViewPtr inner, arith::Expr left, arith::Expr right,
                ir::PadMode mode);
ViewPtr splitView(ViewPtr inner, arith::Expr m);
ViewPtr joinView(ViewPtr inner);
ViewPtr transposeView(ViewPtr inner);
ViewPtr slide3View(ViewPtr inner, arith::Expr size, arith::Expr step);
ViewPtr pad3View(ViewPtr inner, arith::Expr amount, ir::PadMode mode);
ViewPtr offsetView(ViewPtr inner, arith::Expr offset);
ViewPtr iotaView(arith::Expr count);
ViewPtr constantView(const std::string& cExpr, ir::TypePtr type);

/// Resolves a *scalar-typed* view chain into a C expression that loads the
/// value. `zeroLiteral` is used for out-of-bounds reads under zero padding
/// (e.g. "(real)0"). Throws CodegenError on malformed chains.
std::string resolveLoad(const ViewPtr& v, const std::string& zeroLiteral);

/// Resolves a *scalar-typed* view chain into a C lvalue for writing. Pads and
/// constants are illegal in output position. Throws CodegenError otherwise.
std::string resolveStore(const ViewPtr& v);

/// Debug rendering of the view structure (paper notation, e.g.
/// "TupleAccessView(0, ArrayAccessView(i, ZipView(MemView(A), MemView(B))))").
std::string describe(const ViewPtr& v);

// --- structured resolution (codegen optimizer) -----------------------------

/// A zero-Pad guard kept as expressions rather than C text: the access is in
/// bounds iff `0 <= adjusted && adjusted < size`.
struct AccessGuard {
  arith::Expr adjusted;
  arith::Expr size;
};

/// The structured twin of resolveLoad/resolveStore: the same walk, but the
/// flat address and the pad guards come back as arith::Expr so the codegen
/// optimizer can simplify, prove and CSE them before printing C. Guards are
/// listed in the order resolve() pushes them (the first guard ends up as the
/// outermost ternary).
struct ResolvedAccess {
  enum class Kind { Mem, Iota, Constant };
  Kind kind = Kind::Mem;
  std::string mem;                  // Kind::Mem: buffer name
  arith::Expr index;                // Kind::Mem flat address / Iota value
  std::string code;                 // Kind::Constant: C expression
  std::vector<AccessGuard> guards;  // zero-Pad guards (loads only)
};

/// Resolves a scalar-typed view chain into a structured access. Same error
/// conditions as resolveLoad/resolveStore (stores reject pads/constants).
ResolvedAccess resolveAccess(const ViewPtr& v, bool forStore);

// --- symbolic resolution (static analysis) ---------------------------------

/// A zero-Pad guard encountered while resolving a view chain: the access only
/// happens when `0 <= actual < size`; inside the resolved index the guarded
/// component is represented by the fresh variable `var` with domain
/// [0, size-1], so provers automatically assume the guard.
struct SymbolicGuard {
  std::string var;     // fresh variable standing for the guarded component
  arith::Expr actual;  // the real (unguarded) component expression
  arith::Expr size;    // inner extent the guard checks against
};

/// The result of symbolically resolving a scalar-typed view chain: which
/// memory is touched and at which flat element index — the analysis-side twin
/// of resolveLoad/resolveStore, producing arith::Expr instead of C text.
struct SymbolicAccess {
  enum class Kind {
    Mem,       // buffer access: `mem[index]`, extent = flat element count
    Iota,      // no memory touched; `index` is the value itself
    Constant,  // ArrayCons element; no memory touched here
  };
  Kind kind = Kind::Mem;
  std::string mem;                    // Kind::Mem only
  arith::Expr index;                  // flat element index (or Iota value)
  arith::Expr extent;                 // Kind::Mem: flat element count
  std::vector<SymbolicGuard> guards;  // zero-Pad guards wrapping the access
  bool clamped = false;               // a Clamp pad contributed min/max terms
};

/// Resolves a scalar-typed view chain symbolically. `guardCounter` supplies
/// unique suffixes for guard variables across one kernel's analysis. Throws
/// CodegenError on malformed chains (same conditions as resolveLoad).
SymbolicAccess resolveSymbolic(const ViewPtr& v, int& guardCounter);

}  // namespace lifta::view
