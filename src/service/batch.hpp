// Batch RIR dataset API: N sampled scenes -> shards on disk.
//
// The ML-data-augmentation workload gpuRIR and pyroomacoustics serve at
// scale: one submission describes thousands of related simulations (rooms,
// sources, receivers drawn from a seeded sampler) and the service amortizes
// scheduling, admission and — for the FDTD tiers — voxelization caching
// across all of them. Expansion is deterministic: identical (spec.seed,
// ranges, count) reproduce bit-identical job specs, and because every
// engine is deterministic too, the written shard set is byte-identical
// across runs (hash-stable datasets).
//
// Output formats:
//  - RawF32: shard_NNNNN.f32 files of little-endian float32 tensors shaped
//    [scenesInShard][receiversPerScene][steps], `shardSize` scenes per
//    shard (the last shard may be short), plus a manifest.json describing
//    the layout.
//  - Wav: one 16-bit PCM file per (scene, receiver), rirNNNNN_rxR.wav,
//    un-normalized (clamped to [-1, 1]) so relative amplitudes survive,
//    plus the same manifest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ism/sampler.hpp"
#include "service/rir_service.hpp"

namespace lifta::service {

enum class ShardFormat { RawF32, Wav };

const char* shardFormatName(ShardFormat f);

struct BatchSpec {
  /// Number of scenes (rooms x source) to sample; each contributes
  /// ranges.receiversPerScene RIRs.
  int scenes = 0;
  std::uint64_t seed = 1;
  ism::SceneRanges ranges;

  Fidelity fidelity = Fidelity::Ism;
  /// Samples per RIR (RirJobSpec::steps).
  int steps = 0;
  /// Shared scheme parameters: sampleRate and c drive the ISM renderer,
  /// and additionally the grid spacing for the Hybrid fidelity's FDTD
  /// half. threads/stepper knobs apply to FDTD stepping.
  acoustics::SimParams params;

  int maxOrder = 6;
  int sincHalfWidth = 32;
  /// Hybrid only: crossover window, samples.
  int crossoverStart = 0;
  int crossoverEnd = 0;
  bool matchEnergyAtSplice = false;

  /// Fdtd fidelity only: which implementation tier steps each job.
  JobTier fdtdTier = JobTier::Reference;
  /// Fdtd + Device tier only: kernel tiering mode for every expanded job.
  /// Specialized/Tiered batches pre-warm — runRirBatch queues every
  /// scene's constant-specialized builds on the background compile queue
  /// before submitting any job, so the compile thread works ahead of the
  /// serialized device executors.
  DeviceKernelTier deviceKernelTier = DeviceKernelTier::Generic;

  /// Existing directory the shards and manifest are written into.
  std::string outDir;
  ShardFormat format = ShardFormat::RawF32;
  /// Scenes per RawF32 shard file.
  int shardSize = 64;
  /// Queue priority shared by every expanded job.
  int priority = 0;
};

struct BatchResult {
  int scenesRequested = 0;
  /// Scenes whose jobs finished Done and were written to shards; scenes
  /// with failed/rejected jobs are skipped (sceneStatus says why).
  int scenesWritten = 0;
  int rirsWritten = 0;
  std::vector<JobStatus> sceneStatus;  // per scene, expansion order
  std::vector<std::string> shardPaths;
  std::string manifestPath;
  double wallSeconds = 0.0;
  /// Completed RIRs per wall second, the dataset-generation throughput the
  /// fidelity tiers are compared on (bench/ism_batch).
  double rirsPerSecond = 0.0;
};

/// Deterministic expansion of a batch into per-scene job specs (scene i ->
/// spec i). Exposed for tests and capacity planning; runRirBatch submits
/// exactly these.
std::vector<RirJobSpec> expandBatch(const BatchSpec& spec);

/// Sum of per-job admission estimates over the expanded batch — what the
/// whole dataset needs if every job ran at once; the service's budget
/// admission meters the actual concurrency below this.
std::size_t estimateBatchMemoryBytes(const BatchSpec& spec);

/// Expands, submits and waits for the whole batch on `svc`, then writes
/// the shard set in scene order (deterministic byte layout for a fixed
/// seed). Blocking. Throws lifta::Error for unwritable outDir or malformed
/// specs (scenes < 1, steps < 1, shardSize < 1).
BatchResult runRirBatch(RirService& svc, const BatchSpec& spec);

}  // namespace lifta::service
