#include "service/checkpoint.hpp"

#include <cstdint>
#include <fstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace lifta::service {

namespace {

struct Header {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t scalarBytes = 0;
  std::uint32_t model = 0;
  std::uint32_t shape = 0;
  std::int32_t nx = 0, ny = 0, nz = 0;
  std::int32_t numMaterials = 0;
  std::int32_t numBranches = 0;
  std::int32_t stepsTaken = 0;
  std::uint64_t cells = 0;
  std::uint64_t fdStateLen = 0;
};

template <typename T>
Header headerFor(const acoustics::Simulation<T>& sim) {
  const auto& cfg = sim.config();
  Header h{};  // value-init zeroes struct padding so files are deterministic
  h.magic = kCheckpointMagic;
  h.version = kCheckpointVersion;
  h.scalarBytes = sizeof(T);
  h.model = static_cast<std::uint32_t>(cfg.model);
  h.shape = static_cast<std::uint32_t>(cfg.room.shape);
  h.nx = cfg.room.nx;
  h.ny = cfg.room.ny;
  h.nz = cfg.room.nz;
  h.numMaterials = cfg.numMaterials;
  h.numBranches = cfg.numBranches;
  h.stepsTaken = sim.stepsTaken();
  h.cells = sim.grid().cells();
  h.fdStateLen = sim.fdStateLen();
  return h;
}

void writeBytes(std::ofstream& f, const void* data, std::size_t bytes) {
  f.write(static_cast<const char*>(data),
          static_cast<std::streamsize>(bytes));
}

void readBytes(std::ifstream& f, void* data, std::size_t bytes,
               const std::string& path) {
  f.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (f.gcount() != static_cast<std::streamsize>(bytes)) {
    throw Error("checkpoint truncated: " + path);
  }
}

void checkField(std::uint64_t have, std::uint64_t want, const char* name,
                const std::string& path) {
  if (have != want) {
    throw Error(strformat(
        "checkpoint %s mismatch in %s: file has %llu, simulation expects %llu",
        name, path.c_str(), static_cast<unsigned long long>(have),
        static_cast<unsigned long long>(want)));
  }
}

}  // namespace

template <typename T>
void saveCheckpoint(const acoustics::Simulation<T>& sim,
                    const std::string& path) {
  const Header h = headerFor(sim);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw Error("cannot open checkpoint for writing: " + path);
  writeBytes(f, &h, sizeof(h));
  const std::size_t fieldBytes = static_cast<std::size_t>(h.cells) * sizeof(T);
  writeBytes(f, sim.prev(), fieldBytes);
  writeBytes(f, sim.curr(), fieldBytes);
  writeBytes(f, sim.next(), fieldBytes);
  if (h.fdStateLen > 0) {
    const std::size_t stateBytes =
        static_cast<std::size_t>(h.fdStateLen) * sizeof(T);
    writeBytes(f, sim.g1(), stateBytes);
    writeBytes(f, sim.v1(), stateBytes);
    writeBytes(f, sim.v2(), stateBytes);
  }
  f.flush();
  if (!f) throw Error("checkpoint write failed: " + path);
}

template <typename T>
void restoreCheckpoint(acoustics::Simulation<T>& sim,
                       const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("cannot open checkpoint: " + path);
  Header h;
  readBytes(f, &h, sizeof(h), path);
  const Header want = headerFor(sim);
  checkField(h.magic, want.magic, "magic", path);
  checkField(h.version, want.version, "version", path);
  checkField(h.scalarBytes, want.scalarBytes, "scalar width", path);
  checkField(h.model, want.model, "boundary model", path);
  checkField(h.shape, want.shape, "room shape", path);
  checkField(static_cast<std::uint64_t>(h.nx),
             static_cast<std::uint64_t>(want.nx), "nx", path);
  checkField(static_cast<std::uint64_t>(h.ny),
             static_cast<std::uint64_t>(want.ny), "ny", path);
  checkField(static_cast<std::uint64_t>(h.nz),
             static_cast<std::uint64_t>(want.nz), "nz", path);
  checkField(static_cast<std::uint64_t>(h.numMaterials),
             static_cast<std::uint64_t>(want.numMaterials), "material count",
             path);
  checkField(static_cast<std::uint64_t>(h.numBranches),
             static_cast<std::uint64_t>(want.numBranches), "branch count",
             path);
  checkField(h.cells, want.cells, "cell count", path);
  checkField(h.fdStateLen, want.fdStateLen, "FD state length", path);

  const std::size_t fieldBytes = static_cast<std::size_t>(h.cells) * sizeof(T);
  readBytes(f, sim.prevMutable(), fieldBytes, path);
  readBytes(f, sim.currMutable(), fieldBytes, path);
  readBytes(f, sim.nextMutable(), fieldBytes, path);
  if (h.fdStateLen > 0) {
    const std::size_t stateBytes =
        static_cast<std::size_t>(h.fdStateLen) * sizeof(T);
    readBytes(f, sim.g1Mutable(), stateBytes, path);
    readBytes(f, sim.v1Mutable(), stateBytes, path);
    readBytes(f, sim.v2Mutable(), stateBytes, path);
  }
  sim.setStepsTaken(h.stepsTaken);
}

template void saveCheckpoint<float>(const acoustics::Simulation<float>&,
                                    const std::string&);
template void saveCheckpoint<double>(const acoustics::Simulation<double>&,
                                     const std::string&);
template void restoreCheckpoint<float>(acoustics::Simulation<float>&,
                                       const std::string&);
template void restoreCheckpoint<double>(acoustics::Simulation<double>&,
                                        const std::string&);

}  // namespace lifta::service
