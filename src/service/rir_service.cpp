#include "service/rir_service.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/json_writer.hpp"
#include "common/string_util.hpp"
#include "common/wav.hpp"
#include "ism/hybrid.hpp"
#include "lift_acoustics/device_simulation.hpp"
#include "ocl/compile_queue.hpp"
#include "ocl/runtime.hpp"
#include "service/checkpoint.hpp"
#include "service/device_config.hpp"

namespace lifta::service {

using acoustics::BoundaryModel;
using Clock = std::chrono::steady_clock;

const char* fidelityName(Fidelity f) {
  switch (f) {
    case Fidelity::Fdtd: return "fdtd";
    case Fidelity::Ism: return "ism";
    case Fidelity::Hybrid: return "hybrid";
  }
  return "?";
}

const char* jobStatusName(JobStatus s) {
  switch (s) {
    case JobStatus::Queued: return "queued";
    case JobStatus::Running: return "running";
    case JobStatus::Done: return "done";
    case JobStatus::Cancelled: return "cancelled";
    case JobStatus::TimedOut: return "timed-out";
    case JobStatus::Rejected: return "rejected";
    case JobStatus::Failed: return "failed";
  }
  return "?";
}

namespace {

bool isTerminal(JobStatus s) {
  return s != JobStatus::Queued && s != JobStatus::Running;
}

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

struct RirService::Job {
  JobId id = 0;
  std::uint64_t seq = 0;  // submission order, for FIFO within a priority
  RirJobSpec spec;
  std::size_t memBytes = 0;
  std::size_t insideCells = 0;
  std::uint64_t imageRenders = 0;  // ISM images x receivers this job rendered
  // Device tier with Specialized/Tiered kernels: swap outcome at job end.
  bool deviceTiered = false;
  std::uint64_t kernelsSpecialized = 0;
  std::uint64_t kernelsStayedGeneric = 0;
  Clock::time_point submitTime;
  std::atomic<bool> cancelRequested{false};
  JobStatus status = JobStatus::Queued;  // guarded by the service mutex
  RirResult result;
};

namespace {

/// Cap on the ISM reflection order: the image lattice grows cubically, and
/// past ~20 orders the enumeration cost dwarfs any fidelity gain.
constexpr int kMaxIsmOrder = 20;

/// The FDTD half of a hybrid job: a box grid over the same continuous room
/// the image-source engine simulates, at the job's grid spacing.
acoustics::Room hybridGridRoom(const RirJobSpec& spec) {
  return acoustics::boxRoomFromMeters(spec.ism.room.lx, spec.ism.room.ly,
                                      spec.ism.room.lz, spec.params.h());
}

/// Checks shared by the Ism and Hybrid fidelities (continuous domain).
std::string validateIsm(const RirJobSpec& spec) {
  const IsmJobParams& p = spec.ism;
  if (spec.tier == JobTier::Device) {
    return "ISM/hybrid fidelities are reference-tier only";
  }
  if (!spec.checkpointPath.empty() || !spec.resumeFrom.empty()) {
    return "checkpoint/resume is FDTD-fidelity only";
  }
  if (p.room.lx <= 0.0 || p.room.ly <= 0.0 || p.room.lz <= 0.0) {
    return "ISM room dimensions must be positive";
  }
  if (p.maxOrder < 0 || p.maxOrder > kMaxIsmOrder) {
    return strformat("ISM maxOrder must be in [0, %d]", kMaxIsmOrder);
  }
  if (p.sincHalfWidth < 1) return "ISM sincHalfWidth must be >= 1";
  for (const double beta : p.wallBeta) {
    if (beta < 0.0) return "wall admittance must be >= 0";
  }
  const auto insideOpen = [&](const ism::Vec3& v) {
    return v.x > 0.0 && v.x < p.room.lx && v.y > 0.0 && v.y < p.room.ly &&
           v.z > 0.0 && v.z < p.room.lz;
  };
  if (!insideOpen(p.source)) {
    return "ISM source must be strictly inside the room";
  }
  if (p.receivers.empty()) return "need at least one receiver";
  for (const auto& rx : p.receivers) {
    if (!insideOpen(rx)) return "ISM receiver must be strictly inside the room";
  }
  if (spec.fidelity == Fidelity::Hybrid) {
    if (!(p.crossoverStart >= 0 && p.crossoverStart < p.crossoverEnd &&
          p.crossoverEnd <= spec.steps)) {
      return "hybrid crossover must satisfy 0 <= start < end <= steps";
    }
    if (!spec.params.stable()) {
      return "Courant number exceeds the 3D stability limit";
    }
    const acoustics::Room grid = hybridGridRoom(spec);
    if (!acoustics::gridIndexableInt32(grid)) {
      return "hybrid FDTD grid has more cells than int32 indices can address";
    }
  }
  return {};
}

}  // namespace

std::string RirService::validate(const RirJobSpec& spec) {
  const auto& room = spec.room;
  if (spec.steps < 1) return "steps must be >= 1";
  if (spec.params.threads < 0) return "params.threads must be >= 0";
  if (spec.params.tileZ < 1) return "params.tileZ must be >= 1";
  if (spec.params.sampleRate <= 0.0) return "sample rate must be positive";
  if (spec.params.c <= 0.0) return "speed of sound must be positive";
  if (spec.fidelity != Fidelity::Fdtd) return validateIsm(spec);
  if (room.nx < 3 || room.ny < 3 || room.nz < 3) {
    return "room must be at least 3 cells in every dimension";
  }
  // The int32-overflow guard of voxelize(), applied before any allocation.
  if (!acoustics::gridIndexableInt32(room)) {
    return "grid has more cells than int32 flat indices can address";
  }
  if (!spec.params.stable()) {
    return "Courant number exceeds the 3D stability limit";
  }
  if (spec.numMaterials < 1) return "need at least one material";
  if (spec.model == BoundaryModel::FdMm &&
      (spec.numBranches < 1 || spec.numBranches > acoustics::kMaxBranches)) {
    return "FD-MM needs 1..kMaxBranches ODE branches";
  }
  if (spec.receivers.empty()) return "need at least one receiver";
  for (const auto& r : spec.receivers) {
    if (!room.inside(r.x, r.y, r.z)) {
      return strformat("receiver (%d, %d, %d) is outside the room", r.x, r.y,
                       r.z);
    }
  }
  for (const auto& s : spec.sources) {
    if (!room.inside(s.x, s.y, s.z)) {
      return strformat("source (%d, %d, %d) is outside the room", s.x, s.y,
                       s.z);
    }
  }
  if (spec.checkpointEverySteps < 0) {
    return "checkpointEverySteps must be >= 0";
  }
  if (spec.checkpointEverySteps > 0 && spec.checkpointPath.empty()) {
    return "checkpointEverySteps needs a checkpointPath";
  }
  if (spec.tier == JobTier::Device) {
    if (spec.model != BoundaryModel::FiMm &&
        spec.model != BoundaryModel::FdMm) {
      return "device tier supports the FI-MM and FD-MM models only";
    }
    if (!spec.checkpointPath.empty() || !spec.resumeFrom.empty()) {
      return "checkpoint/resume is reference-tier only";
    }
  }
  return {};
}

namespace {

/// Grid-state footprint of one FDTD simulation (no traces): pressure
/// triple buffer + voxelization arrays + FD-MM branch state, with boundary
/// points upper-bounded from the box closed form.
std::size_t fdtdGridBytes(const acoustics::Room& room, std::size_t scalarBytes,
                          BoundaryModel model, int numBranches, JobTier tier) {
  const std::size_t cells = room.cells();
  // Boundary points are unknown before voxelization; the box closed form
  // times two upper-bounds every supported shape (the L-shape adds two
  // interior walls, everything else has fewer points than the box hull),
  // clamped to the trivial bound of one point per cell.
  const std::size_t boundaryEst =
      std::min(cells, 2 * acoustics::boxBoundaryCount(room.nx, room.ny,
                                                      room.nz));
  std::size_t bytes = 3 * cells * scalarBytes  // prev/curr/next
                      + cells * 4;             // nbrs
  // boundaryIndices + boundaryNbr + material, plus the interior-run plan
  // (runs are bounded by boundary-adjacent rows).
  bytes += boundaryEst * (3 * 4 + 12);
  if (model == BoundaryModel::FdMm) {
    bytes += 3 * static_cast<std::size_t>(numBranches) * boundaryEst *
             scalarBytes;
  }
  if (tier == JobTier::Device) {
    bytes *= 2;  // host mirrors + simulated device buffers
  }
  return bytes;
}

}  // namespace

std::size_t RirService::estimateMemoryBytes(const RirJobSpec& spec) {
  const std::size_t scalarBytes =
      spec.precision == JobPrecision::Float32 ? 4 : 8;
  const std::size_t steps =
      spec.steps > 0 ? static_cast<std::size_t>(spec.steps) : 0;
  const std::size_t receivers = spec.fidelity == Fidelity::Fdtd
                                    ? spec.receivers.size()
                                    : spec.ism.receivers.size();
  // Per-receiver recording traces live for the whole job and are always
  // double (RirResult::traces); long multi-receiver jobs are dominated by
  // this term, not the grid.
  std::size_t bytes = steps * receivers * sizeof(double);
  if (!spec.wavDir.empty()) {
    // WAV export materializes, one receiver at a time, a peak-normalized
    // double copy of the trace plus the 16-bit PCM samples.
    bytes += steps * (sizeof(double) + sizeof(std::int16_t));
  }

  if (spec.fidelity != Fidelity::Fdtd) {
    // Image-source list: exact lattice size for the requested order.
    const int order = std::clamp(spec.ism.maxOrder, 0, kMaxIsmOrder);
    bytes += ism::IsmEngine::countImages(order) * sizeof(ism::ImageSource);
    if (spec.fidelity == Fidelity::Hybrid) {
      const acoustics::Room grid = hybridGridRoom(spec);
      if (!acoustics::gridIndexableInt32(grid)) {
        return std::numeric_limits<std::size_t>::max();
      }
      // The hybrid FDTD half always steps in double with the FI-MM model
      // (one material derived from the wall admittances), and the stitch
      // holds the ISM and FDTD traces alongside the result trace.
      bytes += fdtdGridBytes(grid, sizeof(double), BoundaryModel::FiMm, 0,
                             JobTier::Reference);
      bytes += 2 * steps * receivers * sizeof(double);
    }
    return bytes;
  }

  if (!acoustics::gridIndexableInt32(spec.room)) {
    // Unrepresentable grids can never be admitted.
    return std::numeric_limits<std::size_t>::max();
  }
  return bytes + fdtdGridBytes(spec.room, scalarBytes, spec.model,
                               spec.numBranches, spec.tier);
}

RirService::RirService() : RirService(Config{}) {}

RirService::RirService(Config config) : config_(config) {
  LIFTA_CHECK(config_.workers >= 1, "service needs at least one worker");
  LIFTA_CHECK(config_.memoryBudgetBytes > 0, "memory budget must be > 0");
  LIFTA_CHECK(config_.cancelCheckEverySteps >= 1,
              "cancelCheckEverySteps must be >= 1");
  stepPool_ = config_.stepPool != nullptr ? config_.stepPool
                                          : &ThreadPool::global();
  const auto voxel = acoustics::voxelCacheStats();
  voxelHitsAtStart_ = voxel.hits;
  voxelMissesAtStart_ = voxel.misses;
  executors_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    executors_.emplace_back([this] { executorLoop(); });
  }
}

RirService::~RirService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    for (auto& [id, job] : jobs_) {
      if (!isTerminal(job->status)) job->cancelRequested.store(true);
    }
  }
  cvQueue_.notify_all();
  for (auto& t : executors_) t.join();
}

RirService::JobId RirService::submit(RirJobSpec spec) {
  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->submitTime = Clock::now();
  const std::string problem = validate(job->spec);
  const std::size_t estimate =
      problem.empty() ? estimateMemoryBytes(job->spec) : 0;

  std::lock_guard<std::mutex> lock(mu_);
  LIFTA_CHECK(!stopping_, "submit on a stopping service");
  job->id = nextId_++;
  job->seq = nextSeq_++;
  ++submitted_;
  jobs_.emplace(job->id, job);

  if (!problem.empty() || estimate > config_.memoryBudgetBytes) {
    job->result.error =
        !problem.empty()
            ? problem
            : strformat("estimated %zu bytes exceeds the %zu-byte budget",
                        estimate, config_.memoryBudgetBytes);
    job->result.memoryBytesEstimated = estimate;
    job->status = job->result.status = JobStatus::Rejected;
    job->result.finishSequence = nextFinishSeq_++;
    ++rejected_;
    cvDone_.notify_all();
    return job->id;
  }

  job->memBytes = estimate;
  job->result.memoryBytesEstimated = estimate;
  // Highest priority first, FIFO within a priority: insert before the
  // first strictly-worse entry.
  const auto pos = std::find_if(
      queue_.begin(), queue_.end(), [&](const std::shared_ptr<Job>& q) {
        return q->spec.priority < job->spec.priority;
      });
  queue_.insert(pos, job);
  cvQueue_.notify_all();
  return job->id;
}

bool RirService::cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || isTerminal(it->second->status)) return false;
  it->second->cancelRequested.store(true);
  // A still-queued job finalizes right here — even when every executor is
  // busy — so waiters unblock immediately and the queue keeps draining
  // around it. A running job stops at its next step-granularity check.
  const auto pos = std::find(queue_.begin(), queue_.end(), it->second);
  if (pos != queue_.end()) {
    queue_.erase(pos);
    finalize(*it->second, JobStatus::Cancelled);
  }
  cvQueue_.notify_all();
  return true;
}

JobStatus RirService::status(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  LIFTA_CHECK(it != jobs_.end(), "unknown job id");
  return it->second->status;
}

RirResult RirService::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  LIFTA_CHECK(it != jobs_.end(), "unknown job id");
  auto job = it->second;
  cvDone_.wait(lock, [&] { return isTerminal(job->status); });
  return job->result;
}

void RirService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cvDone_.wait(lock, [&] {
    for (const auto& [id, job] : jobs_) {
      if (!isTerminal(job->status)) return false;
    }
    return true;
  });
}

// Caller holds mu_. Records the terminal state and metrics contributions.
void RirService::finalize(Job& job, JobStatus status) {
  job.status = job.result.status = status;
  job.result.finishSequence = nextFinishSeq_++;
  switch (status) {
    case JobStatus::Done: ++completed_; break;
    case JobStatus::Cancelled: ++cancelled_; break;
    case JobStatus::TimedOut: ++timedOut_; break;
    case JobStatus::Failed: ++failed_; break;
    default: break;
  }
  const std::uint64_t jobCellSteps =
      static_cast<std::uint64_t>(job.insideCells) *
      static_cast<std::uint64_t>(job.result.stepsDone);
  cellSteps_ += jobCellSteps;
  auto& engine = engines_[static_cast<std::size_t>(job.spec.fidelity)];
  if (status == JobStatus::Done) ++engine.jobs;
  engine.cellSteps += jobCellSteps;
  engine.imageRenders += job.imageRenders;
  if (job.deviceTiered) {
    ++deviceJobsTiered_;
    deviceKernelsSpecialized_ += job.kernelsSpecialized;
    deviceKernelsStayedGeneric_ += job.kernelsStayedGeneric;
  }
  totalRunMs_ += job.result.runMs;
  cvDone_.notify_all();
}

void RirService::executorLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cvQueue_.wait(lock, [&] {
      if (stopping_ && queue_.empty()) return true;
      if (queue_.empty()) return false;
      if (std::any_of(queue_.begin(), queue_.end(),
                      [](const std::shared_ptr<Job>& q) {
                        return q->cancelRequested.load();
                      })) {
        return true;
      }
      return memoryInUse_ + queue_.front()->memBytes <=
             config_.memoryBudgetBytes;
    });
    if (queue_.empty()) return;  // stopping

    // Sweep cancellations anywhere in the queue so a cancelled job frees
    // its slot immediately and the queue keeps draining around it.
    for (auto it = queue_.begin(); it != queue_.end();) {
      if ((*it)->cancelRequested.load()) {
        finalize(**it, JobStatus::Cancelled);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    if (queue_.empty() ||
        memoryInUse_ + queue_.front()->memBytes > config_.memoryBudgetBytes) {
      continue;  // re-evaluate the wait predicate
    }

    auto job = queue_.front();
    queue_.erase(queue_.begin());
    job->result.queueWaitMs = msSince(job->submitTime);
    queueWaitSamples_.push_back(job->result.queueWaitMs);
    if (job->spec.timeoutMs > 0.0 &&
        job->result.queueWaitMs >= job->spec.timeoutMs) {
      finalize(*job, JobStatus::TimedOut);  // deadline expired while queued
      continue;
    }
    memoryInUse_ += job->memBytes;
    peakMemoryInUse_ = std::max(peakMemoryInUse_, memoryInUse_);
    job->status = JobStatus::Running;

    lock.unlock();
    runJob(*job);
    lock.lock();

    memoryInUse_ -= job->memBytes;
    finalize(*job, job->result.status);
    cvQueue_.notify_all();  // budget freed
  }
}

// Runs outside the service mutex; leaves the terminal status in
// job.result.status for finalize().
void RirService::runJob(Job& job) {
  try {
    if (job.spec.fidelity == Fidelity::Ism) {
      runIsmJob(job);
    } else if (job.spec.fidelity == Fidelity::Hybrid) {
      runHybridJob(job);
    } else if (job.spec.tier == JobTier::Device) {
      runDeviceJob(job);
    } else if (job.spec.precision == JobPrecision::Float32) {
      runReferenceJob<float>(job);
    } else {
      runReferenceJob<double>(job);
    }
  } catch (const std::exception& e) {
    job.result.error = e.what();
    job.result.status = JobStatus::Failed;
  }
}

bool RirService::deadlineExpired(const Job& job) const {
  return job.spec.timeoutMs > 0.0 &&
         msSince(job.submitTime) >= job.spec.timeoutMs;
}

template <typename T>
void RirService::runReferenceJob(Job& job) {
  const RirJobSpec& spec = job.spec;
  typename acoustics::Simulation<T>::Config cfg;
  cfg.room = spec.room;
  cfg.params = spec.params;
  cfg.model = spec.model;
  cfg.numMaterials = spec.numMaterials;
  cfg.numBranches = spec.numBranches;
  cfg.materials = spec.materials;
  cfg.pool = stepPool_;
  acoustics::Simulation<T> sim(cfg);
  job.insideCells = sim.grid().insideCells;

  if (!spec.resumeFrom.empty()) {
    // The original run already injected the sources; restore reproduces
    // the field as of the checkpointed step.
    restoreCheckpoint(sim, spec.resumeFrom);
  } else {
    for (const auto& s : spec.sources) {
      sim.addImpulse(s.x, s.y, s.z, static_cast<T>(s.amplitude));
    }
  }
  if (spec.profile) sim.enableProfiling();

  job.result.traces.assign(spec.receivers.size(), {});
  JobStatus end = JobStatus::Done;
  Timer runTimer;
  int done = sim.stepsTaken();
  while (done < spec.steps) {
    if (job.cancelRequested.load()) {
      end = JobStatus::Cancelled;
      break;
    }
    if (deadlineExpired(job)) {
      end = JobStatus::TimedOut;
      break;
    }
    // Cancellation takes effect at *task* granularity inside record() (the
    // cancel flag is threaded into the stepper, which stops at the next
    // step boundary while the in-flight graph drains), so chunking only
    // serves deadline precision and checkpoint cadence. Without either, a
    // single record() call covers the remaining steps and the task-graph
    // pipeline runs unbroken.
    int chunk = spec.steps - done;
    if (spec.timeoutMs > 0.0) {
      chunk = std::min(chunk, config_.cancelCheckEverySteps);
    }
    if (spec.checkpointEverySteps > 0) {
      chunk = std::min(
          chunk, spec.checkpointEverySteps - done % spec.checkpointEverySteps);
    }
    std::vector<std::vector<T>> part;
    const int did = sim.record(chunk, spec.receivers, part,
                               &job.cancelRequested);
    for (std::size_t r = 0; r < part.size(); ++r) {
      auto& trace = job.result.traces[r];
      trace.insert(trace.end(), part[r].begin(), part[r].end());
    }
    done += did;
    job.result.stepsDone += did;
    if (did < chunk) {
      end = JobStatus::Cancelled;
      break;
    }
    if (spec.checkpointEverySteps > 0 &&
        done % spec.checkpointEverySteps == 0) {
      saveCheckpoint(sim, spec.checkpointPath);
    }
  }
  if (end == JobStatus::Done && spec.checkpointEverySteps > 0 &&
      done % spec.checkpointEverySteps != 0) {
    saveCheckpoint(sim, spec.checkpointPath);  // final-step checkpoint
  }
  job.result.runMs = runTimer.milliseconds();
  if (job.result.runMs > 0.0) {
    job.result.mcellsPerSecond = static_cast<double>(job.insideCells) *
                                 job.result.stepsDone /
                                 (job.result.runMs * 1e3);
  }
  if (spec.profile) job.result.profile = sim.profile();
  if (end == JobStatus::Done) exportWavs(job);
  job.result.status = end;
}

lift_acoustics::DeviceSimulation::Config deviceConfigFromSpec(
    const RirJobSpec& spec) {
  lift_acoustics::DeviceSimulation::Config cfg;
  cfg.room = spec.room;
  cfg.params = spec.params;
  cfg.model = spec.model == BoundaryModel::FdMm
                  ? lift_acoustics::DeviceModel::FdMm
                  : lift_acoustics::DeviceModel::FiMm;
  cfg.numMaterials = spec.numMaterials;
  if (spec.model == BoundaryModel::FdMm) cfg.numBranches = spec.numBranches;
  cfg.precision = spec.precision == JobPrecision::Float32
                      ? ir::ScalarKind::Float
                      : ir::ScalarKind::Double;
  cfg.materials = spec.materials;
  switch (spec.deviceKernelTier) {
    case DeviceKernelTier::Generic:
      cfg.kernelTier = lift_acoustics::KernelTier::Generic;
      break;
    case DeviceKernelTier::Specialized:
      cfg.kernelTier = lift_acoustics::KernelTier::Specialized;
      break;
    case DeviceKernelTier::Tiered:
      cfg.kernelTier = lift_acoustics::KernelTier::Tiered;
      break;
  }
  return cfg;
}

void RirService::runDeviceJob(Job& job) {
  const RirJobSpec& spec = job.spec;
  // One JIT context shared by every device job; DeviceSimulation drives it
  // single-threadedly, so device-tier jobs serialize here.
  std::lock_guard<std::mutex> devLock(deviceMu_);
  if (!deviceContext_) deviceContext_ = std::make_unique<ocl::Context>();

  lift_acoustics::DeviceSimulation dev(*deviceContext_,
                                       deviceConfigFromSpec(spec));
  job.insideCells = dev.grid().insideCells;

  for (const auto& s : spec.sources) {
    dev.addImpulse(s.x, s.y, s.z, s.amplitude);
  }

  job.result.traces.assign(spec.receivers.size(), {});
  JobStatus end = JobStatus::Done;
  Timer runTimer;
  int done = 0;
  while (done < spec.steps) {
    if (job.cancelRequested.load()) {
      end = JobStatus::Cancelled;
      break;
    }
    if (deadlineExpired(job)) {
      end = JobStatus::TimedOut;
      break;
    }
    const int chunk =
        std::min(config_.cancelCheckEverySteps, spec.steps - done);
    for (int i = 0; i < chunk; ++i) {
      dev.step();
      for (std::size_t r = 0; r < spec.receivers.size(); ++r) {
        const auto& rx = spec.receivers[r];
        job.result.traces[r].push_back(dev.sample(rx.x, rx.y, rx.z));
      }
    }
    done += chunk;
    job.result.stepsDone += chunk;
  }
  job.result.runMs = runTimer.milliseconds();
  if (job.result.runMs > 0.0) {
    job.result.mcellsPerSecond = static_cast<double>(job.insideCells) *
                                 job.result.stepsDone /
                                 (job.result.runMs * 1e3);
  }
  if (spec.deviceKernelTier != DeviceKernelTier::Generic) {
    job.deviceTiered = true;
    job.kernelsSpecialized = dev.specializedKernels();
    job.kernelsStayedGeneric = dev.totalKernels() - dev.specializedKernels();
  }
  if (end == JobStatus::Done) exportWavs(job);
  job.result.status = end;
}

namespace {

/// Engine config for the ISM side of an Ism or Hybrid job.
ism::IsmConfig ismConfigFromSpec(const RirJobSpec& spec) {
  ism::IsmConfig cfg;
  cfg.room = spec.ism.room;
  cfg.source = spec.ism.source;
  cfg.receivers = spec.ism.receivers;
  cfg.maxOrder = spec.ism.maxOrder;
  cfg.wallR = ism::reflectionsFromAdmittances(spec.ism.wallBeta);
  cfg.c = spec.params.c;
  cfg.sampleRate = spec.params.sampleRate;
  cfg.numSamples = spec.steps;
  cfg.sincHalfWidth = spec.ism.sincHalfWidth;
  return cfg;
}

}  // namespace

void RirService::runIsmJob(Job& job) {
  const RirJobSpec& spec = job.spec;
  Timer runTimer;
  const ism::IsmEngine engine(ismConfigFromSpec(spec));
  job.result.traces.assign(spec.ism.receivers.size(), {});
  JobStatus end = JobStatus::Done;
  // Cancellation/deadline granularity: one receiver render (the ISM
  // analogue of the FDTD tiers' step granularity).
  for (std::size_t r = 0; r < spec.ism.receivers.size(); ++r) {
    if (job.cancelRequested.load()) {
      end = JobStatus::Cancelled;
      break;
    }
    if (deadlineExpired(job)) {
      end = JobStatus::TimedOut;
      break;
    }
    job.result.traces[r] = engine.renderReceiver(r);
    job.imageRenders += engine.images().size();
  }
  if (end == JobStatus::Done) job.result.stepsDone = spec.steps;
  job.result.runMs = runTimer.milliseconds();
  if (end == JobStatus::Done) exportWavs(job);
  job.result.status = end;
}

void RirService::runHybridJob(Job& job) {
  const RirJobSpec& spec = job.spec;
  Timer runTimer;
  const ism::IsmEngine engine(ismConfigFromSpec(spec));

  // FDTD half: a box grid over the same continuous room, stepped in double
  // with the FI-MM model and one material whose admittance is the mean of
  // the per-wall admittances (the grid voxelizer has no per-wall material
  // map; the ISM side carries the per-wall detail).
  const double h = spec.params.h();
  acoustics::Simulation<double>::Config cfg;
  cfg.room = hybridGridRoom(spec);
  cfg.params = spec.params;
  cfg.model = BoundaryModel::FiMm;
  cfg.numMaterials = 1;
  double meanBeta = 0.0;
  for (const double b : spec.ism.wallBeta) meanBeta += b;
  meanBeta /= ism::kNumWalls;
  cfg.materials = {acoustics::Material{meanBeta, {}}};
  cfg.pool = stepPool_;
  acoustics::Simulation<double> sim(cfg);
  job.insideCells = sim.grid().insideCells;

  sim.addImpulse(
      acoustics::cellForPosition(spec.ism.source.x, h, cfg.room.nx),
      acoustics::cellForPosition(spec.ism.source.y, h, cfg.room.ny),
      acoustics::cellForPosition(spec.ism.source.z, h, cfg.room.nz), 1.0);
  std::vector<acoustics::Receiver> receivers;
  receivers.reserve(spec.ism.receivers.size());
  for (const auto& rx : spec.ism.receivers) {
    receivers.push_back({acoustics::cellForPosition(rx.x, h, cfg.room.nx),
                         acoustics::cellForPosition(rx.y, h, cfg.room.ny),
                         acoustics::cellForPosition(rx.z, h, cfg.room.nz)});
  }
  if (spec.profile) sim.enableProfiling();

  JobStatus end = JobStatus::Done;
  std::vector<std::vector<double>> fdtd(receivers.size());
  int done = 0;
  while (done < spec.steps) {
    if (job.cancelRequested.load()) {
      end = JobStatus::Cancelled;
      break;
    }
    if (deadlineExpired(job)) {
      end = JobStatus::TimedOut;
      break;
    }
    int chunk = spec.steps - done;
    if (spec.timeoutMs > 0.0) {
      chunk = std::min(chunk, config_.cancelCheckEverySteps);
    }
    std::vector<std::vector<double>> part;
    const int did = sim.record(chunk, receivers, part, &job.cancelRequested);
    for (std::size_t r = 0; r < part.size(); ++r) {
      fdtd[r].insert(fdtd[r].end(), part[r].begin(), part[r].end());
    }
    done += did;
    job.result.stepsDone += did;
    if (did < chunk) {
      end = JobStatus::Cancelled;
      break;
    }
  }

  if (end != JobStatus::Done) {
    // An interrupted hybrid job returns the raw partial FDTD traces; the
    // stitch needs the full trace length to be meaningful.
    job.result.traces = std::move(fdtd);
  } else {
    const ism::CrossoverSpec window{spec.ism.crossoverStart,
                                    spec.ism.crossoverEnd};
    job.result.traces.assign(receivers.size(), {});
    job.result.spliceEnergyRatio.assign(receivers.size(), 0.0);
    for (std::size_t r = 0; r < receivers.size(); ++r) {
      ism::HybridStats stats;
      job.result.traces[r] =
          ism::stitchHybrid(engine.renderReceiver(r), fdtd[r], window,
                            spec.ism.matchEnergyAtSplice, &stats);
      job.result.spliceEnergyRatio[r] = stats.energyRatio;
      job.imageRenders += engine.images().size();
    }
  }
  job.result.runMs = runTimer.milliseconds();
  if (job.result.runMs > 0.0) {
    job.result.mcellsPerSecond = static_cast<double>(job.insideCells) *
                                 job.result.stepsDone /
                                 (job.result.runMs * 1e3);
  }
  if (spec.profile) job.result.profile = sim.profile();
  if (end == JobStatus::Done) exportWavs(job);
  job.result.status = end;
}

void RirService::exportWavs(Job& job) {
  if (job.spec.wavDir.empty()) return;
  const int rate = static_cast<int>(job.spec.params.sampleRate);
  for (std::size_t r = 0; r < job.result.traces.size(); ++r) {
    const std::string path =
        strformat("%s/job%llu_rx%zu.wav", job.spec.wavDir.c_str(),
                  static_cast<unsigned long long>(job.id), r);
    writeWav(path, normalize(job.result.traces[r]), rate);
    job.result.wavPaths.push_back(path);
  }
}

ServiceMetrics RirService::metrics() const {
  ServiceMetrics m;
  const auto voxel = acoustics::voxelCacheStats();
  std::lock_guard<std::mutex> lock(mu_);
  m.submitted = submitted_;
  m.completed = completed_;
  m.cancelled = cancelled_;
  m.timedOut = timedOut_;
  m.rejected = rejected_;
  m.failed = failed_;
  m.cellStepsProcessed = cellSteps_;
  m.engines = engines_;
  m.totalRunMs = totalRunMs_;
  m.queueWaitMs = summarize(queueWaitSamples_);
  m.elapsedSeconds = uptime_.seconds();
  m.memoryBudgetBytes = config_.memoryBudgetBytes;
  m.memoryInUseBytes = memoryInUse_;
  m.peakMemoryInUseBytes = peakMemoryInUse_;
  m.voxelCacheHits = voxel.hits - voxelHitsAtStart_;
  m.voxelCacheMisses = voxel.misses - voxelMissesAtStart_;
  m.deviceJobsTiered = deviceJobsTiered_;
  m.deviceKernelsSpecialized = deviceKernelsSpecialized_;
  m.deviceKernelsStayedGeneric = deviceKernelsStayedGeneric_;
  const auto cq = ocl::CompileQueue::instance().stats();
  m.compileSubmitted = cq.submitted;
  m.compileDeduped = cq.deduped;
  m.compileCompiled = cq.compiled;
  m.compileFailed = cq.failed;
  m.compileCancelled = cq.cancelled;
  return m;
}

std::string ServiceMetrics::toJson() const {
  JsonWriter json;
  json.beginObject();
  json.key("jobs")
      .beginObject()
      .field("submitted", submitted)
      .field("completed", completed)
      .field("cancelled", cancelled)
      .field("timed_out", timedOut)
      .field("rejected", rejected)
      .field("failed", failed)
      .endObject();
  json.field("cell_steps_processed", cellStepsProcessed)
      .field("total_run_ms", totalRunMs, 3)
      .field("elapsed_seconds", elapsedSeconds, 3)
      .field("jobs_per_second", jobsPerSecond(), 3)
      .field("aggregate_mcells_per_second", aggregateMcellsPerSecond(), 3);
  json.key("queue_wait_ms")
      .beginObject()
      .field("median", queueWaitMs.median, 3)
      .field("mean", queueWaitMs.mean, 3)
      .field("max", queueWaitMs.max, 3)
      .field("count", static_cast<std::uint64_t>(queueWaitMs.count))
      .endObject();
  json.key("memory")
      .beginObject()
      .field("budget_bytes", static_cast<std::uint64_t>(memoryBudgetBytes))
      .field("in_use_bytes", static_cast<std::uint64_t>(memoryInUseBytes))
      .field("peak_in_use_bytes",
             static_cast<std::uint64_t>(peakMemoryInUseBytes))
      .endObject();
  json.key("engines").beginObject();
  for (int f = 0; f < kNumFidelities; ++f) {
    const EngineCounters& e = engines[static_cast<std::size_t>(f)];
    json.key(fidelityName(static_cast<Fidelity>(f)))
        .beginObject()
        .field("jobs", e.jobs)
        .field("cell_steps", e.cellSteps)
        .field("image_renders", e.imageRenders)
        .endObject();
  }
  json.endObject();
  json.key("voxel_cache")
      .beginObject()
      .field("hits", voxelCacheHits)
      .field("misses", voxelCacheMisses)
      .field("hit_rate", voxelCacheHitRate(), 4)
      .endObject();
  json.key("kernel_tiering")
      .beginObject()
      .field("device_jobs_tiered", deviceJobsTiered)
      .field("kernels_specialized", deviceKernelsSpecialized)
      .field("kernels_stayed_generic", deviceKernelsStayedGeneric)
      .endObject();
  json.key("compile_queue")
      .beginObject()
      .field("submitted", compileSubmitted)
      .field("deduped", compileDeduped)
      .field("compiled", compileCompiled)
      .field("failed", compileFailed)
      .field("cancelled", compileCancelled)
      .endObject();
  json.endObject();
  return json.str();
}

template void RirService::runReferenceJob<float>(Job&);
template void RirService::runReferenceJob<double>(Job&);

}  // namespace lifta::service
