// RIR job service: concurrent batched room-impulse-response scheduling.
//
// The user-facing layer a production acoustics deployment drives: a job is
// "simulate this room with these materials, sources and receivers for N
// steps, return the impulse responses" (the batch-RIR workload gpuRIR and
// pyroomacoustics expose). The service runs many jobs concurrently on a
// fixed set of executor threads while every job's stepper shares ONE
// ThreadPool for its intra-step slab/run parallelism — concurrent
// submissions serialize inside the pool, and jobs launched from inside a
// pool task compose through the pool's re-entrancy path — so the machine is
// never oversubscribed no matter how many jobs are in flight.
//
// Scheduling: a priority queue (higher priority first, FIFO within a
// priority) gated by an admission controller with a configurable memory
// budget. A job's footprint is estimated from its grid size and model state
// *before* anything is allocated (reusing the int32 flat-index guard to
// reject unrepresentable grids outright); the head job waits until enough
// budget is free, so total resident simulation state stays bounded.
//
// Lifecycle: Queued -> Running -> {Done, Cancelled, TimedOut, Failed}, or
// Rejected straight from submit(). Cancellation and deadline expiry take
// effect at step granularity mid-run; a cancelled job releases its budget
// immediately and the queue keeps draining. Long jobs can checkpoint every
// K steps (service/checkpoint.hpp) and later resume from the file.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "acoustics/simulation.hpp"
#include "acoustics/step_profiler.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "ism/ism_engine.hpp"

namespace lifta::ocl {
class Context;
}

namespace lifta::service {

/// Which implementation tier steps the job.
enum class JobTier {
  Reference,  // hand-written C++ kernels (Simulation<T>)
  Device,     // LIFT-generated kernels on the simulated OpenCL runtime
};

enum class JobPrecision { Float32, Float64 };

/// Device-tier kernel tiering (DESIGN.md §12); mirrors
/// lift_acoustics::KernelTier without pulling that header in here.
/// Generic runs the shape-agnostic kernels; Specialized blocks on the
/// constant-specialized build before the first step; Tiered starts on the
/// generic kernels and hot-swaps at a step boundary once the background
/// build lands. All three produce bit-identical traces.
enum class DeviceKernelTier { Generic, Specialized, Tiered };

/// Which physical engine produces the impulse response.
enum class Fidelity {
  Fdtd,    // full wave simulation (reference or device tier)
  Ism,     // shoebox image-source early reflections only (host, cheap)
  Hybrid,  // ISM early reflections + FDTD late field, crossover-stitched
};

const char* fidelityName(Fidelity f);
inline constexpr int kNumFidelities = 3;

/// Continuous-domain job description for the ISM and hybrid fidelities.
/// Positions are meters from the room's minimum corner. For Hybrid jobs the
/// FDTD grid, source and receiver cells are derived from these fields at
/// the job's grid spacing (params.h()); the grid-domain RirJobSpec fields
/// (room, sources, receivers) are ignored for non-Fdtd fidelities.
struct IsmJobParams {
  ism::ShoeboxRoom room;
  ism::Vec3 source;
  std::vector<ism::Vec3> receivers;
  /// Maximum reflection order of the enumerated image lattice.
  int maxOrder = 6;
  /// Per-wall FI admittances (materials.hpp beta); the engine derives
  /// reflection coefficients, the hybrid FDTD side derives its material.
  std::array<double, ism::kNumWalls> wallBeta{0.2, 0.2, 0.2, 0.2, 0.2, 0.2};
  int sincHalfWidth = 32;
  /// Hybrid only: crossover window in samples (0 <= start < end <= steps).
  int crossoverStart = 0;
  int crossoverEnd = 0;
  /// Hybrid only: scale the FDTD side so both tiers carry equal energy in
  /// the crossover window (RirResult::spliceEnergyRatio reports the ratio
  /// either way).
  bool matchEnergyAtSplice = false;
};

/// An impulsive source: amplitude added to the pressure field at (x,y,z)
/// before the first step.
struct Source {
  int x = 0;
  int y = 0;
  int z = 0;
  double amplitude = 1.0;
};

struct RirJobSpec {
  acoustics::Room room;
  acoustics::SimParams params;
  acoustics::BoundaryModel model = acoustics::BoundaryModel::FiMm;
  int numMaterials = 1;
  int numBranches = 0;  // FD-MM only
  /// Optional explicit materials; defaultMaterials() otherwise.
  std::vector<acoustics::Material> materials;

  /// Total time steps the job should reach (a resumed job only runs the
  /// remainder). Must be >= 1.
  int steps = 0;
  std::vector<Source> sources;
  std::vector<acoustics::Receiver> receivers;  // at least one

  JobPrecision precision = JobPrecision::Float64;
  JobTier tier = JobTier::Reference;
  /// Device tier only: how the job's kernels are compiled and swapped.
  DeviceKernelTier deviceKernelTier = DeviceKernelTier::Generic;
  /// Engine selection; Ism and Hybrid read `ism` instead of the grid-domain
  /// room/sources/receivers and run on the reference tier only.
  Fidelity fidelity = Fidelity::Fdtd;
  IsmJobParams ism;

  /// Higher runs first; FIFO within equal priority.
  int priority = 0;
  /// Deadline measured from submission (queue wait counts); 0 = none.
  /// Checked at step granularity while running.
  double timeoutMs = 0.0;
  /// Collect per-step kernel timings into RirResult::profile.
  bool profile = false;

  /// If non-empty, write one 16-bit PCM WAV per receiver into this
  /// directory (job<id>_rx<i>.wav, peak-normalized).
  std::string wavDir;
  /// Reference tier only: write a checkpoint to `checkpointPath` every
  /// `checkpointEverySteps` steps (and at the final step).
  std::string checkpointPath;
  int checkpointEverySteps = 0;
  /// Reference tier only: restore this checkpoint before stepping; the
  /// job then continues to `steps` total.
  std::string resumeFrom;
};

enum class JobStatus {
  Queued,
  Running,
  Done,
  Cancelled,
  TimedOut,
  Rejected,  // failed validation or can never fit the memory budget
  Failed,    // threw while running
};

const char* jobStatusName(JobStatus s);

struct RirResult {
  JobStatus status = JobStatus::Queued;
  std::string error;  // for Rejected / Failed

  /// traces[r][s]: pressure at receiver r after step s (steps run by THIS
  /// job; a resumed job's traces start at its restore point). Partial for
  /// Cancelled/TimedOut jobs.
  std::vector<std::vector<double>> traces;
  std::vector<std::string> wavPaths;

  int stepsDone = 0;  // steps run by this job
  /// Hybrid jobs: per-receiver ISM/FDTD energy ratio inside the crossover
  /// window (HybridStats::energyRatio), the splice-continuity diagnostic.
  std::vector<double> spliceEnergyRatio;
  double queueWaitMs = 0.0;
  double runMs = 0.0;
  std::size_t memoryBytesEstimated = 0;
  /// Inside-cell updates per second while running (0 if never ran).
  double mcellsPerSecond = 0.0;
  /// Monotonic completion order across the service (1 = finished first).
  std::uint64_t finishSequence = 0;
  /// Per-step kernel timings when spec.profile was set.
  acoustics::StepProfiler profile;
};

/// Per-fidelity engine activity: how many jobs each engine finished and
/// how much work it did in its native unit — inside-cell updates for the
/// FDTD stepper, image-source renders (images x receivers) for the ISM
/// engine. Hybrid jobs contribute to both units.
struct EngineCounters {
  std::uint64_t jobs = 0;          // jobs completed (Done)
  std::uint64_t cellSteps = 0;     // FDTD inside-cell updates
  std::uint64_t imageRenders = 0;  // ISM images x receivers rendered
};

/// Aggregate service-level counters; a consistent snapshot of a moment.
struct ServiceMetrics {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t timedOut = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;

  /// Per-engine breakdown, indexed by Fidelity.
  std::array<EngineCounters, kNumFidelities> engines{};

  /// Inside-cell updates summed over every step any job ran.
  std::uint64_t cellStepsProcessed = 0;
  double totalRunMs = 0.0;
  SampleStats queueWaitMs;  // over all jobs that started running
  double elapsedSeconds = 0.0;

  std::size_t memoryBudgetBytes = 0;
  std::size_t memoryInUseBytes = 0;
  std::size_t peakMemoryInUseBytes = 0;

  /// Process-wide voxelization-cache activity since service construction.
  std::uint64_t voxelCacheHits = 0;
  std::uint64_t voxelCacheMisses = 0;

  /// Device-tier kernel tiering (DESIGN.md §12): how many finished device
  /// jobs ran Specialized or Tiered, how many of their kernels ended up on
  /// the constant-specialized variant, and how many stayed generic (build
  /// failed or the job finished before the swap boundary — never an error,
  /// the generic kernel is always correct).
  std::uint64_t deviceJobsTiered = 0;
  std::uint64_t deviceKernelsSpecialized = 0;
  std::uint64_t deviceKernelsStayedGeneric = 0;

  /// Process-wide background compile queue counters (ocl::CompileQueue)
  /// since process start; pre-warmed batches show up as deduped submits.
  std::uint64_t compileSubmitted = 0;
  std::uint64_t compileDeduped = 0;
  std::uint64_t compileCompiled = 0;
  std::uint64_t compileFailed = 0;
  std::uint64_t compileCancelled = 0;

  double jobsPerSecond() const {
    return elapsedSeconds > 0.0
               ? static_cast<double>(completed) / elapsedSeconds
               : 0.0;
  }
  /// Aggregate sustained throughput over wall time since construction.
  double aggregateMcellsPerSecond() const {
    return elapsedSeconds > 0.0
               ? static_cast<double>(cellStepsProcessed) / 1e6 / elapsedSeconds
               : 0.0;
  }
  double voxelCacheHitRate() const {
    const std::uint64_t lookups = voxelCacheHits + voxelCacheMisses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(voxelCacheHits) /
                              static_cast<double>(lookups);
  }

  /// JSON document (common/json_writer) with every field above plus the
  /// derived rates; what `bench/service_throughput` embeds in
  /// BENCH_service.json.
  std::string toJson() const;
};

class RirService {
public:
  using JobId = std::uint64_t;

  struct Config {
    /// Executor threads = max jobs stepping concurrently.
    int workers = 2;
    /// Admission budget over estimateMemoryBytes of all running jobs.
    std::size_t memoryBudgetBytes = std::size_t{2} << 30;
    /// Shared stepping pool for every job's intra-step parallelism;
    /// nullptr = the process-wide pool.
    ThreadPool* stepPool = nullptr;
    /// Cancellation/deadline/checkpoint check cadence, in steps.
    int cancelCheckEverySteps = 1;
  };

  explicit RirService(Config config);
  RirService();  // default Config
  /// Requests cancellation of every queued and running job, then joins the
  /// executors. Use drain() first for a graceful shutdown.
  ~RirService();

  RirService(const RirService&) = delete;
  RirService& operator=(const RirService&) = delete;

  /// Validates + enqueues. Invalid or budget-exceeding specs yield a job
  /// in the Rejected state (wait() returns immediately); nothing throws
  /// for a bad spec and nothing is allocated for it.
  JobId submit(RirJobSpec spec);

  /// Requests cancellation. Queued jobs finalize as Cancelled when they
  /// reach the head; running jobs stop at the next step-granularity check.
  /// Returns false if the job is unknown or already terminal.
  bool cancel(JobId id);

  JobStatus status(JobId id) const;

  /// Blocks until the job is terminal and returns its result.
  RirResult wait(JobId id);

  /// Blocks until every submitted job is terminal.
  void drain();

  ServiceMetrics metrics() const;

  const Config& config() const { return config_; }

  /// Conservative pre-allocation footprint estimate: pressure triple
  /// buffer + voxelization arrays + FD-MM branch state (boundary points
  /// upper-bounded from the box closed form). Used by admission; also
  /// useful for capacity planning.
  static std::size_t estimateMemoryBytes(const RirJobSpec& spec);

  /// Empty string when the spec is runnable; otherwise the rejection
  /// reason (bad geometry, int32-unaddressable grid, device-tier limits,
  /// unstable Courant number, ...).
  static std::string validate(const RirJobSpec& spec);

private:
  struct Job;

  void executorLoop();
  void runJob(Job& job);
  template <typename T>
  void runReferenceJob(Job& job);
  void runDeviceJob(Job& job);
  void runIsmJob(Job& job);
  void runHybridJob(Job& job);
  void finalize(Job& job, JobStatus status);
  void exportWavs(Job& job);
  bool deadlineExpired(const Job& job) const;

  Config config_;
  ThreadPool* stepPool_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cvQueue_;  // executors: work or budget available
  std::condition_variable cvDone_;   // waiters: some job reached terminal
  std::vector<std::shared_ptr<Job>> queue_;  // sorted: best job first
  std::map<JobId, std::shared_ptr<Job>> jobs_;
  bool stopping_ = false;

  JobId nextId_ = 1;
  std::uint64_t nextSeq_ = 1;
  std::uint64_t nextFinishSeq_ = 1;
  std::size_t memoryInUse_ = 0;
  std::size_t peakMemoryInUse_ = 0;

  // Metrics accumulators (guarded by mu_).
  std::uint64_t submitted_ = 0, completed_ = 0, cancelled_ = 0, timedOut_ = 0,
                rejected_ = 0, failed_ = 0;
  std::uint64_t cellSteps_ = 0;
  std::uint64_t deviceJobsTiered_ = 0, deviceKernelsSpecialized_ = 0,
                deviceKernelsStayedGeneric_ = 0;
  std::array<EngineCounters, kNumFidelities> engines_{};
  double totalRunMs_ = 0.0;
  std::vector<double> queueWaitSamples_;
  std::uint64_t voxelHitsAtStart_ = 0, voxelMissesAtStart_ = 0;
  Timer uptime_;

  /// Device-tier jobs serialize on this mutex (one shared JIT context).
  std::mutex deviceMu_;
  std::unique_ptr<ocl::Context> deviceContext_;  // lazily created

  std::vector<std::thread> executors_;
};

}  // namespace lifta::service
