// Internal: the one spec -> DeviceSimulation::Config mapping shared by the
// device-tier executor (RirService::runDeviceJob) and the batch pre-warmer
// (runRirBatch). Both sides must agree exactly — a pre-warmed specialized
// build only pays off if the real job generates byte-identical kernel
// source and hits the compile queue / JIT cache.
#pragma once

#include "lift_acoustics/device_simulation.hpp"
#include "service/rir_service.hpp"

namespace lifta::service {

lift_acoustics::DeviceSimulation::Config deviceConfigFromSpec(
    const RirJobSpec& spec);

}  // namespace lifta::service
