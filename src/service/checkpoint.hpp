// Checkpoint/restore of full reference-tier simulation state.
//
// A checkpoint captures everything the stepper's trajectory depends on —
// the three rotating pressure fields (logical prev/curr/next, regardless of
// which physical buffer each currently occupies), the FD-MM boundary state
// g1/v1/v2, and the step counter — in a versioned binary container, so that
// restore + continue is bit-identical to an uninterrupted run. The RIR job
// service uses this to survive cancellation/restart of long jobs; the file
// also doubles as a portable "suspend to disk" for interactive use.
//
// Format (native endianness, version 1):
//   u32 magic 'LRCK'  u32 version
//   u32 scalarBytes (4 = float, 8 = double)
//   u32 model  u32 shape
//   i32 nx ny nz  i32 numMaterials  i32 numBranches  i32 stepsTaken
//   u64 cells  u64 fdStateLen
//   T prev[cells]  T curr[cells]  T next[cells]
//   T g1[fdStateLen]  T v1[fdStateLen]  T v2[fdStateLen]   (FD-MM only)
// Restore validates every header field against the target simulation's
// config and throws lifta::Error on any mismatch or truncation.
#pragma once

#include <string>

#include "acoustics/simulation.hpp"

namespace lifta::service {

inline constexpr std::uint32_t kCheckpointMagic = 0x4C52434Bu;  // "LRCK"
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Writes `sim`'s full state to `path`. Throws lifta::Error on I/O failure.
template <typename T>
void saveCheckpoint(const acoustics::Simulation<T>& sim,
                    const std::string& path);

/// Loads a checkpoint into `sim`, which must have been constructed with a
/// matching config (model, shape, dims, precision, materials, branches).
/// After the call sim.stepsTaken() equals the saved counter and stepping
/// continues the saved trajectory bit-for-bit.
template <typename T>
void restoreCheckpoint(acoustics::Simulation<T>& sim, const std::string& path);

}  // namespace lifta::service
