#include "service/batch.hpp"

#include <cstdio>
#include <cstring>

#include "common/error.hpp"
#include "common/json_writer.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/wav.hpp"
#include "ocl/runtime.hpp"
#include "service/device_config.hpp"

namespace lifta::service {

const char* shardFormatName(ShardFormat f) {
  switch (f) {
    case ShardFormat::RawF32: return "raw-f32";
    case ShardFormat::Wav: return "wav";
  }
  return "?";
}

namespace {

void validateBatch(const BatchSpec& spec) {
  LIFTA_CHECK(spec.scenes >= 1, "batch needs at least one scene");
  LIFTA_CHECK(spec.steps >= 1, "steps must be >= 1");
  LIFTA_CHECK(spec.shardSize >= 1, "shardSize must be >= 1");
  LIFTA_CHECK(!spec.outDir.empty(), "batch needs an output directory");
}

/// Little-endian float32 serialization (matches the WAV writer's manual
/// little-endian layout, so shards are portable across hosts).
void putF32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  out.push_back(static_cast<std::uint8_t>(bits & 0xff));
  out.push_back(static_cast<std::uint8_t>((bits >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((bits >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((bits >> 24) & 0xff));
}

void writeFile(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw Error("cannot open for writing: " + path);
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) throw Error("short write: " + path);
}

}  // namespace

std::vector<RirJobSpec> expandBatch(const BatchSpec& spec) {
  validateBatch(spec);
  std::vector<RirJobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(spec.scenes));
  for (int i = 0; i < spec.scenes; ++i) {
    const ism::SampledScene scene = ism::sampleScene(spec.ranges, spec.seed, i);
    RirJobSpec job;
    job.fidelity = spec.fidelity;
    job.steps = spec.steps;
    job.params = spec.params;
    job.priority = spec.priority;
    job.ism.room = scene.room;
    job.ism.source = scene.source;
    job.ism.receivers = scene.receivers;
    job.ism.wallBeta = scene.wallBeta;
    job.ism.maxOrder = spec.maxOrder;
    job.ism.sincHalfWidth = spec.sincHalfWidth;
    job.ism.crossoverStart = spec.crossoverStart;
    job.ism.crossoverEnd = spec.crossoverEnd;
    job.ism.matchEnergyAtSplice = spec.matchEnergyAtSplice;
    if (spec.fidelity == Fidelity::Fdtd) {
      job.tier = spec.fdtdTier;
      job.deviceKernelTier = spec.deviceKernelTier;
      // Pure-FDTD batches discretize the sampled scene the same way the
      // hybrid FDTD half does: box grid at params.h(), one mean-admittance
      // material, cell-snapped source and receivers.
      const double h = spec.params.h();
      job.room = acoustics::boxRoomFromMeters(scene.room.lx, scene.room.ly,
                                              scene.room.lz, h);
      job.model = acoustics::BoundaryModel::FiMm;
      job.numMaterials = 1;
      double meanBeta = 0.0;
      for (const double b : scene.wallBeta) meanBeta += b;
      job.materials = {acoustics::Material{meanBeta / ism::kNumWalls, {}}};
      job.sources.push_back(
          {acoustics::cellForPosition(scene.source.x, h, job.room.nx),
           acoustics::cellForPosition(scene.source.y, h, job.room.ny),
           acoustics::cellForPosition(scene.source.z, h, job.room.nz), 1.0});
      for (const auto& rx : scene.receivers) {
        job.receivers.push_back(
            {acoustics::cellForPosition(rx.x, h, job.room.nx),
             acoustics::cellForPosition(rx.y, h, job.room.ny),
             acoustics::cellForPosition(rx.z, h, job.room.nz)});
      }
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::size_t estimateBatchMemoryBytes(const BatchSpec& spec) {
  std::size_t total = 0;
  for (const auto& job : expandBatch(spec)) {
    total += RirService::estimateMemoryBytes(job);
  }
  return total;
}

BatchResult runRirBatch(RirService& svc, const BatchSpec& spec) {
  validateBatch(spec);
  Timer wall;
  const std::vector<RirJobSpec> jobs = expandBatch(spec);

  BatchResult out;
  out.scenesRequested = spec.scenes;

  // Pre-warm specializations: queue every scene's constant-specialized
  // kernel builds before any job is admitted. Device jobs serialize on one
  // shared context, so without this the Nth job's background build could
  // only start once job N constructs; queuing up front lets the compile
  // thread run ahead and the real jobs dedup onto in-flight tickets or hit
  // the JIT cache outright.
  if (spec.fidelity == Fidelity::Fdtd && spec.fdtdTier == JobTier::Device &&
      spec.deviceKernelTier != DeviceKernelTier::Generic) {
    ocl::Context warmCtx;
    for (const auto& job : jobs) {
      lift_acoustics::DeviceSimulation::prewarmSpecializations(
          warmCtx, deviceConfigFromSpec(job));
    }
  }

  std::vector<RirService::JobId> ids;
  ids.reserve(jobs.size());
  for (const auto& job : jobs) ids.push_back(svc.submit(job));

  std::vector<RirResult> results;
  results.reserve(ids.size());
  for (const auto id : ids) results.push_back(svc.wait(id));
  for (const auto& r : results) out.sceneStatus.push_back(r.status);

  // Shard writing happens after every job is terminal, in scene order, so
  // the byte layout never depends on completion interleaving.
  const int receivers = spec.ranges.receiversPerScene;
  if (spec.format == ShardFormat::RawF32) {
    std::vector<std::uint8_t> shard;
    int scenesInShard = 0;
    int shardIndex = 0;
    const auto flush = [&] {
      if (scenesInShard == 0) return;
      const std::string path =
          strformat("%s/shard_%05d.f32", spec.outDir.c_str(), shardIndex);
      writeFile(path, shard);
      out.shardPaths.push_back(path);
      shard.clear();
      scenesInShard = 0;
      ++shardIndex;
    };
    for (const auto& r : results) {
      if (r.status != JobStatus::Done) continue;
      for (const auto& trace : r.traces) {
        for (const double s : trace) putF32(shard, static_cast<float>(s));
      }
      out.rirsWritten += static_cast<int>(r.traces.size());
      ++out.scenesWritten;
      if (++scenesInShard == spec.shardSize) flush();
    }
    flush();
  } else {
    const int rate = static_cast<int>(spec.params.sampleRate);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      if (r.status != JobStatus::Done) continue;
      for (std::size_t rx = 0; rx < r.traces.size(); ++rx) {
        const std::string path = strformat("%s/rir%05zu_rx%zu.wav",
                                           spec.outDir.c_str(), i, rx);
        writeWav(path, r.traces[rx], rate);
        out.shardPaths.push_back(path);
        ++out.rirsWritten;
      }
      ++out.scenesWritten;
    }
  }

  JsonWriter manifest;
  manifest.beginObject()
      .field("format", shardFormatName(spec.format))
      .field("fidelity", fidelityName(spec.fidelity))
      .field("seed", spec.seed)
      .field("scenes_requested", out.scenesRequested)
      .field("scenes_written", out.scenesWritten)
      .field("rirs_written", out.rirsWritten)
      .field("receivers_per_scene", receivers)
      .field("steps", spec.steps)
      .field("sample_rate_hz", spec.params.sampleRate, 1)
      .field("max_order", spec.maxOrder)
      .field("shard_size_scenes", spec.shardSize);
  manifest.key("shards").beginArray();
  for (const auto& path : out.shardPaths) manifest.value(path);
  manifest.endArray();
  manifest.key("scene_status").beginArray();
  for (const auto s : out.sceneStatus) manifest.value(jobStatusName(s));
  manifest.endArray();
  manifest.endObject();
  out.manifestPath = spec.outDir + "/manifest.json";
  manifest.writeFile(out.manifestPath);

  out.wallSeconds = wall.seconds();
  out.rirsPerSecond = out.wallSeconds > 0.0
                          ? static_cast<double>(out.rirsWritten) /
                                out.wallSeconds
                          : 0.0;
  return out;
}

}  // namespace lifta::service
