#include "ism/sampler.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace lifta::ism {

namespace {

void validateRanges(const SceneRanges& r) {
  LIFTA_CHECK(r.minDims.x > 0.0 && r.minDims.y > 0.0 && r.minDims.z > 0.0,
              "room dimensions must be positive");
  LIFTA_CHECK(r.maxDims.x >= r.minDims.x && r.maxDims.y >= r.minDims.y &&
                  r.maxDims.z >= r.minDims.z,
              "maxDims must dominate minDims");
  LIFTA_CHECK(r.minWallBeta >= 0.0 && r.maxWallBeta >= r.minWallBeta,
              "wall admittance range must be ordered and >= 0");
  LIFTA_CHECK(r.receiversPerScene >= 1, "need at least one receiver per scene");
  LIFTA_CHECK(r.wallClearance >= 0.0, "wallClearance must be >= 0");
  LIFTA_CHECK(r.minSourceReceiverDist >= 0.0,
              "minSourceReceiverDist must be >= 0");
  const double minSpan =
      std::min(std::min(r.minDims.x, r.minDims.y), r.minDims.z);
  LIFTA_CHECK(2.0 * r.wallClearance < minSpan,
              "wallClearance leaves no interior in the smallest room");
}

Vec3 samplePoint(Rng& rng, const ShoeboxRoom& room, double clearance) {
  Vec3 p;
  p.x = rng.uniform(clearance, room.lx - clearance);
  p.y = rng.uniform(clearance, room.ly - clearance);
  p.z = rng.uniform(clearance, room.lz - clearance);
  return p;
}

double dist(const Vec3& a, const Vec3& b) {
  const double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

}  // namespace

std::uint64_t sceneSeed(std::uint64_t seed, int index) {
  // splitmix64 finalizer over the combined words; Rng's constructor expands
  // this further, so adjacent indices yield independent streams.
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

SampledScene sampleScene(const SceneRanges& ranges, std::uint64_t seed,
                         int index) {
  validateRanges(ranges);
  LIFTA_CHECK(index >= 0, "scene index must be >= 0");
  Rng rng(sceneSeed(seed, index));

  SampledScene scene;
  scene.room.lx = rng.uniform(ranges.minDims.x, ranges.maxDims.x);
  scene.room.ly = rng.uniform(ranges.minDims.y, ranges.maxDims.y);
  scene.room.lz = rng.uniform(ranges.minDims.z, ranges.maxDims.z);
  for (auto& beta : scene.wallBeta) {
    beta = rng.uniform(ranges.minWallBeta, ranges.maxWallBeta);
  }
  scene.source = samplePoint(rng, scene.room, ranges.wallClearance);
  scene.receivers.reserve(static_cast<std::size_t>(ranges.receiversPerScene));
  for (int r = 0; r < ranges.receiversPerScene; ++r) {
    // Bounded rejection keeps the draw count — and therefore the stream —
    // deterministic; after the attempt budget the last draw is accepted so
    // sampling always terminates (tight rooms may then violate the
    // source-distance preference, never the wall clearance).
    Vec3 p = samplePoint(rng, scene.room, ranges.wallClearance);
    for (int attempt = 0;
         attempt < 16 && dist(p, scene.source) < ranges.minSourceReceiverDist;
         ++attempt) {
      p = samplePoint(rng, scene.room, ranges.wallClearance);
    }
    scene.receivers.push_back(p);
  }
  return scene;
}

std::vector<SampledScene> sampleScenes(const SceneRanges& ranges, int count,
                                       std::uint64_t seed) {
  LIFTA_CHECK(count >= 0, "count must be >= 0");
  std::vector<SampledScene> scenes;
  scenes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    scenes.push_back(sampleScene(ranges, seed, i));
  }
  return scenes;
}

}  // namespace lifta::ism
