// Image Source Method (ISM) engine for shoebox rooms.
//
// The third workload class next to the reference and LIFT FDTD tiers: the
// specular early-reflection model gpuRIR (Diaz-Guerra et al.) and
// pyroomacoustics (Scheibler et al.) run at dataset scale. A shoebox room
// [0,Lx]x[0,Ly]x[0,Lz] with a point source is unfolded into a lattice of
// image sources (Allen & Berkley); every image contributes one attenuated,
// fractionally delayed impulse to each receiver trace. Per-wall reflection
// coefficients are derived from the FDTD tier's frequency-independent
// material admittances (R = (1 - beta) / (1 + beta)), so the two tiers
// describe the same walls.
//
// Everything here is pure double arithmetic over fixed iteration orders:
// identical configs produce bit-identical traces across runs, which is what
// makes the batch dataset API hash-stable and the engine unit-testable
// against closed-form direct-path/first-reflection delays.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "acoustics/materials.hpp"

namespace lifta::ism {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

/// Interior dimensions of the shoebox, meters.
struct ShoeboxRoom {
  double lx = 0.0;
  double ly = 0.0;
  double lz = 0.0;
};

/// Wall indexing for per-wall coefficients: the wall at axis coordinate 0
/// then at the axis extent, per axis.
enum Wall : int { WallX0 = 0, WallX1, WallY0, WallY1, WallZ0, WallZ1 };
inline constexpr int kNumWalls = 6;

/// Normal-incidence pressure reflection coefficient of a locally reacting
/// wall with normalized admittance `beta` — the same admittance-like loss
/// coefficient the FI boundary kernels consume (materials.hpp). beta = 0 is
/// rigid (R = 1); beta = 1 is perfectly matched (R = 0).
double reflectionFromAdmittance(double beta);

/// Per-wall reflection coefficients from per-wall FI admittances.
std::array<double, kNumWalls> reflectionsFromAdmittances(
    const std::array<double, kNumWalls>& beta);

/// Per-wall reflection coefficients from a material palette and a per-wall
/// material id (only the FI `beta` of each material is used).
std::array<double, kNumWalls> reflectionsFromMaterials(
    const std::vector<acoustics::Material>& materials,
    const std::array<int, kNumWalls>& wallMaterial);

/// One image source: its unfolded position, the product of the reflection
/// coefficients along its path, and its reflection order (0 = direct path).
struct ImageSource {
  Vec3 pos;
  double gain = 1.0;
  int order = 0;
};

struct IsmConfig {
  ShoeboxRoom room;
  Vec3 source;
  std::vector<Vec3> receivers;
  /// Images with up to this many wall reflections are enumerated.
  int maxOrder = 6;
  /// Per-wall pressure reflection coefficients, |R| <= 1.
  std::array<double, kNumWalls> wallR{1.0, 1.0, 1.0, 1.0, 1.0, 1.0};

  double c = 344.0;            // speed of sound, m/s
  double sampleRate = 44100.0; // Hz
  /// Rendered trace length, samples.
  int numSamples = 0;
  /// Half-width of the Hann-windowed sinc used for fractional delays,
  /// samples each side of the delay.
  int sincHalfWidth = 32;
  /// Apply free-field spherical spreading 1/(4*pi*d) per image.
  bool distanceAttenuation = true;
};

class IsmEngine {
public:
  /// Validates the config and enumerates the image lattice (deterministic
  /// order). Throws lifta::Error on invalid configs (non-positive room,
  /// source/receiver outside the open interior, |R| > 1, ...).
  explicit IsmEngine(IsmConfig config);

  const IsmConfig& config() const { return config_; }

  /// The enumerated images, direct path first, then ascending by the
  /// fixed lattice iteration order.
  const std::vector<ImageSource>& images() const { return images_; }

  /// Exact number of images enumerated for a reflection order, independent
  /// of room or source (the lattice size depends only on the order). Used
  /// by the service's admission estimate before an engine exists.
  static std::size_t countImages(int maxOrder);

  /// Renders every image into per-receiver traces; result[r][n] is the
  /// band-limited impulse response at receiver r, sample n.
  std::vector<std::vector<double>> render() const;

  /// Renders receiver `r` only (render() is this over every receiver).
  std::vector<double> renderReceiver(std::size_t r) const;

  /// The windowed-sinc interpolation kernel: sinc(x) * Hann(x / halfWidth)
  /// for |x| <= halfWidth, 0 outside. Peak 1 at x = 0, zero at every other
  /// integer x, so integer delays reproduce amplitudes exactly.
  static double windowedSinc(double x, int halfWidth);

private:
  IsmConfig config_;
  std::vector<ImageSource> images_;
};

}  // namespace lifta::ism
