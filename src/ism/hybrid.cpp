#include "ism/hybrid.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lifta::ism {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double crossoverWeight(int n, const CrossoverSpec& spec) {
  if (n < spec.start) return 0.0;
  if (n >= spec.end) return 1.0;
  const double t = static_cast<double>(n - spec.start) /
                   static_cast<double>(spec.end - spec.start);
  return 0.5 * (1.0 - std::cos(kPi * t));
}

std::vector<double> stitchHybrid(const std::vector<double>& ism,
                                 const std::vector<double>& fdtd,
                                 const CrossoverSpec& spec, bool matchEnergy,
                                 HybridStats* stats) {
  LIFTA_CHECK(ism.size() == fdtd.size(),
              "ISM and FDTD traces must have equal lengths");
  const int n = static_cast<int>(ism.size());
  LIFTA_CHECK(spec.start >= 0 && spec.start < spec.end && spec.end <= n,
              "crossover window must satisfy 0 <= start < end <= length");

  HybridStats st;
  for (int i = spec.start; i < spec.end; ++i) {
    const double a = ism[static_cast<std::size_t>(i)];
    const double b = fdtd[static_cast<std::size_t>(i)];
    st.ismWindowEnergy += a * a;
    st.fdtdWindowEnergy += b * b;
  }
  st.energyRatio = st.fdtdWindowEnergy > 0.0
                       ? st.ismWindowEnergy / st.fdtdWindowEnergy
                       : 0.0;
  st.fdtdGain = matchEnergy && st.energyRatio > 0.0
                    ? std::sqrt(st.energyRatio)
                    : 1.0;

  std::vector<double> out(ism.size());
  for (int i = 0; i < n; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    // Exact passthrough outside the window: before `start` the hybrid IS
    // the ISM trace bit-for-bit, after `end` it IS the (scaled) FDTD trace.
    if (i < spec.start) {
      out[u] = ism[u];
    } else if (i >= spec.end) {
      out[u] = st.fdtdGain == 1.0 ? fdtd[u] : st.fdtdGain * fdtd[u];
    } else {
      const double w = crossoverWeight(i, spec);
      out[u] = (1.0 - w) * ism[u] + w * st.fdtdGain * fdtd[u];
    }
  }
  if (stats != nullptr) *stats = st;
  return out;
}

}  // namespace lifta::ism
