// Hybrid ISM/FDTD crossover stitching.
//
// The hybrid fidelity tier renders early reflections with the ISM engine
// (cheap, specular-exact) and the late diffuse field with the FDTD stepper
// (expensive, physically complete), splicing the two traces with a raised-
// cosine crossover window. The complementary weights sum to exactly 1 at
// every sample — before `start` the output IS the ISM trace, after `end`
// it IS the FDTD trace, and the blend in between introduces no gain ripple
// (unit-gain property, unit-tested).
#pragma once

#include <vector>

namespace lifta::ism {

/// Crossover window, in samples: output is pure ISM for n < start, pure
/// FDTD for n >= end, blended over [start, end).
struct CrossoverSpec {
  int start = 0;
  int end = 0;
};

/// Splice diagnostics for energy-continuity validation.
struct HybridStats {
  double ismWindowEnergy = 0.0;   // sum of ism^2 over [start, end)
  double fdtdWindowEnergy = 0.0;  // sum of fdtd^2 over [start, end)
  /// ismWindowEnergy / fdtdWindowEnergy (0 when the window is silent).
  double energyRatio = 0.0;
  /// Gain applied to the FDTD trace: sqrt(energyRatio) when matchEnergy,
  /// else exactly 1.
  double fdtdGain = 1.0;
};

/// FDTD-side crossover weight at sample n: 0 for n < start, 1 for
/// n >= end, raised cosine in between. The ISM side uses 1 minus this, so
/// the pair sums to 1 at every sample.
double crossoverWeight(int n, const CrossoverSpec& spec);

/// Stitches one receiver's ISM and FDTD traces (equal lengths required)
/// into a hybrid RIR. With matchEnergy the FDTD trace is scaled so both
/// sides carry equal energy inside the crossover window (continuity at the
/// splice when the two tiers' source calibrations differ); stats (always
/// computed) report the window energies and the applied gain.
std::vector<double> stitchHybrid(const std::vector<double>& ism,
                                 const std::vector<double>& fdtd,
                                 const CrossoverSpec& spec,
                                 bool matchEnergy = false,
                                 HybridStats* stats = nullptr);

}  // namespace lifta::ism
