// Seeded, platform-stable scene sampler for batch RIR datasets.
//
// A dataset batch is N scenes: a shoebox room, a source, R receivers and
// per-wall FI admittances, all drawn from configurable ranges. Every scene
// gets its own RNG stream derived from (batch seed, scene index) with a
// splitmix-style mix, so scene i's draws do not depend on how many scenes
// precede it and identical (ranges, seed, count) reproduce bit-identical
// scenes across runs and platforms: the xoshiro256** generator is pure
// 64-bit integer arithmetic and uniform() maps to doubles with a single
// exact multiply (common/rng.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ism/ism_engine.hpp"

namespace lifta::ism {

/// Ranges the sampler draws scenes from. Dimensions and positions are in
/// meters; admittances are the FI `beta` of materials.hpp.
struct SceneRanges {
  Vec3 minDims{3.0, 2.4, 2.2};
  Vec3 maxDims{8.0, 6.0, 3.5};
  double minWallBeta = 0.05;
  double maxWallBeta = 0.6;
  int receiversPerScene = 1;
  /// Sources and receivers keep at least this distance to every wall.
  double wallClearance = 0.3;
  /// Receivers are rejection-sampled (bounded attempts) to keep at least
  /// this distance to the source.
  double minSourceReceiverDist = 0.5;
};

struct SampledScene {
  ShoeboxRoom room;
  Vec3 source;
  std::vector<Vec3> receivers;
  /// Per-wall FI admittance; reflectionsFromAdmittances() derives the
  /// ISM coefficients, the FDTD tier consumes it as a Material beta.
  std::array<double, 6> wallBeta{};
};

/// The scene-index-independent RNG seed for scene `index` of batch `seed`;
/// exposed so tests can reproduce one scene without sampling the prefix.
std::uint64_t sceneSeed(std::uint64_t seed, int index);

/// Draws scene `index` of the batch. Deterministic in (ranges, seed,
/// index). Throws lifta::Error for infeasible ranges (clearance too large
/// for the smallest room, inverted ranges, ...).
SampledScene sampleScene(const SceneRanges& ranges, std::uint64_t seed,
                         int index);

/// Draws scenes 0..count-1.
std::vector<SampledScene> sampleScenes(const SceneRanges& ranges, int count,
                                       std::uint64_t seed);

}  // namespace lifta::ism
