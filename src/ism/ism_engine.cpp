#include "ism/ism_engine.hpp"

#include <cmath>

#include "common/error.hpp"

namespace lifta::ism {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Per-axis reflection order of lattice coordinate (u, l):
/// |l - u| + |l| wall hits along that axis (Allen & Berkley).
int axisOrder(int u, int l) { return std::abs(l - u) + std::abs(l); }

}  // namespace

double reflectionFromAdmittance(double beta) {
  LIFTA_CHECK(beta >= 0.0, "admittance must be >= 0");
  return (1.0 - beta) / (1.0 + beta);
}

std::array<double, kNumWalls> reflectionsFromAdmittances(
    const std::array<double, kNumWalls>& beta) {
  std::array<double, kNumWalls> r{};
  for (int w = 0; w < kNumWalls; ++w) r[w] = reflectionFromAdmittance(beta[w]);
  return r;
}

std::array<double, kNumWalls> reflectionsFromMaterials(
    const std::vector<acoustics::Material>& materials,
    const std::array<int, kNumWalls>& wallMaterial) {
  std::array<double, kNumWalls> r{};
  for (int w = 0; w < kNumWalls; ++w) {
    const int m = wallMaterial[w];
    LIFTA_CHECK(m >= 0 && m < static_cast<int>(materials.size()),
                "wall material id out of range");
    r[w] = reflectionFromAdmittance(materials[static_cast<std::size_t>(m)].beta);
  }
  return r;
}

IsmEngine::IsmEngine(IsmConfig config) : config_(std::move(config)) {
  const auto& cfg = config_;
  LIFTA_CHECK(cfg.room.lx > 0.0 && cfg.room.ly > 0.0 && cfg.room.lz > 0.0,
              "room dimensions must be positive");
  LIFTA_CHECK(cfg.maxOrder >= 0, "maxOrder must be >= 0");
  LIFTA_CHECK(cfg.c > 0.0, "speed of sound must be positive");
  LIFTA_CHECK(cfg.sampleRate > 0.0, "sample rate must be positive");
  LIFTA_CHECK(cfg.numSamples >= 1, "numSamples must be >= 1");
  LIFTA_CHECK(cfg.sincHalfWidth >= 1, "sincHalfWidth must be >= 1");
  for (const double r : cfg.wallR) {
    LIFTA_CHECK(std::abs(r) <= 1.0, "|wall reflection| must be <= 1");
  }
  const auto insideOpen = [&](const Vec3& p) {
    return p.x > 0.0 && p.x < cfg.room.lx && p.y > 0.0 && p.y < cfg.room.ly &&
           p.z > 0.0 && p.z < cfg.room.lz;
  };
  LIFTA_CHECK(insideOpen(cfg.source), "source must be strictly inside the room");
  LIFTA_CHECK(!cfg.receivers.empty(), "need at least one receiver");
  for (const auto& rx : cfg.receivers) {
    LIFTA_CHECK(insideOpen(rx), "receiver must be strictly inside the room");
  }

  // Lattice enumeration (fixed order => deterministic image list): per axis
  // the image coordinate is (1 - 2u)*s + 2*l*L with u in {0,1}, l integer,
  // and the path hits wall0 |l - u| times and wall1 |l| times. The total
  // order constraint bounds |l| by (maxOrder + 1) / 2 per axis.
  const int L = (cfg.maxOrder + 1) / 2;
  images_.reserve(countImages(cfg.maxOrder));
  // Direct path first (u = l = 0 on every axis), then the lattice scan —
  // re-emitting the direct path inside the scan is skipped.
  images_.push_back({cfg.source, 1.0, 0});
  const double dims[3] = {cfg.room.lx, cfg.room.ly, cfg.room.lz};
  const double src[3] = {cfg.source.x, cfg.source.y, cfg.source.z};
  for (int ux = 0; ux <= 1; ++ux) {
    for (int lx = -L; lx <= L; ++lx) {
      const int ox = axisOrder(ux, lx);
      if (ox > cfg.maxOrder) continue;
      for (int uy = 0; uy <= 1; ++uy) {
        for (int ly = -L; ly <= L; ++ly) {
          const int oy = axisOrder(uy, ly);
          if (ox + oy > cfg.maxOrder) continue;
          for (int uz = 0; uz <= 1; ++uz) {
            for (int lz = -L; lz <= L; ++lz) {
              const int oz = axisOrder(uz, lz);
              const int order = ox + oy + oz;
              if (order > cfg.maxOrder) continue;
              if (order == 0) continue;  // the direct path, already emitted
              const int u[3] = {ux, uy, uz};
              const int l[3] = {lx, ly, lz};
              ImageSource img;
              img.order = order;
              img.gain = 1.0;
              double* pos[3] = {&img.pos.x, &img.pos.y, &img.pos.z};
              for (int a = 0; a < 3; ++a) {
                *pos[a] = (1 - 2 * u[a]) * src[a] + 2.0 * l[a] * dims[a];
                const int hits0 = std::abs(l[a] - u[a]);
                const int hits1 = std::abs(l[a]);
                const double r0 = cfg.wallR[static_cast<std::size_t>(2 * a)];
                const double r1 = cfg.wallR[static_cast<std::size_t>(2 * a + 1)];
                for (int h = 0; h < hits0; ++h) img.gain *= r0;
                for (int h = 0; h < hits1; ++h) img.gain *= r1;
              }
              images_.push_back(img);
            }
          }
        }
      }
    }
  }
}

std::size_t IsmEngine::countImages(int maxOrder) {
  LIFTA_CHECK(maxOrder >= 0, "maxOrder must be >= 0");
  // Per axis, the number of (u, l) pairs with axis order exactly k is 1 for
  // k == 0 (u = l = 0) and 2 for every k >= 1; sum over axis-order triples.
  std::size_t total = 0;
  for (int kx = 0; kx <= maxOrder; ++kx) {
    for (int ky = 0; ky + kx <= maxOrder; ++ky) {
      for (int kz = 0; kz + ky + kx <= maxOrder; ++kz) {
        std::size_t ways = 1;
        if (kx > 0) ways *= 2;
        if (ky > 0) ways *= 2;
        if (kz > 0) ways *= 2;
        total += ways;
      }
    }
  }
  return total;
}

double IsmEngine::windowedSinc(double x, int halfWidth) {
  if (std::abs(x) >= static_cast<double>(halfWidth)) return 0.0;
  const double hann = 0.5 * (1.0 + std::cos(kPi * x / halfWidth));
  if (x == 0.0) return hann;  // sinc(0) = 1
  return hann * std::sin(kPi * x) / (kPi * x);
}

std::vector<double> IsmEngine::renderReceiver(std::size_t r) const {
  LIFTA_CHECK(r < config_.receivers.size(), "receiver index out of range");
  const auto& rx = config_.receivers[r];
  const int N = config_.numSamples;
  const int W = config_.sincHalfWidth;
  const double samplesPerMeter = config_.sampleRate / config_.c;
  std::vector<double> trace(static_cast<std::size_t>(N), 0.0);
  // Hann angle advance per sample, hoisted for the rotation recurrence.
  const double cosStep = std::cos(kPi / W);
  const double sinStep = std::sin(kPi / W);
  for (const auto& img : images_) {
    const double dx = img.pos.x - rx.x;
    const double dy = img.pos.y - rx.y;
    const double dz = img.pos.z - rx.z;
    // Coincident source/receiver only happens for the direct path of a
    // degenerate config; clamp so the spreading term stays finite.
    const double d =
        std::max(std::sqrt(dx * dx + dy * dy + dz * dz), 1e-9);
    const double tau = d * samplesPerMeter;  // fractional sample delay
    if (tau >= static_cast<double>(N + W)) continue;  // entirely past the end
    double amp = img.gain;
    if (config_.distanceAttenuation) amp /= 4.0 * kPi * d;
    // Full support of the windowed sinc: every n with |n - tau| < W.
    const int n0 =
        std::max(0, static_cast<int>(std::floor(tau - W)) + 1);
    const int n1 =
        std::min(N - 1, static_cast<int>(std::ceil(tau + W)) - 1);
    if (n1 < n0) continue;
    // The windowedSinc() kernel computed incrementally: over integer n,
    // sin(pi*(n - tau)) alternates sign with constant magnitude, and the
    // Hann angle pi*(n - tau)/W advances by pi/W per sample, so one
    // sin/cos pair per image plus a plane rotation replaces the two
    // per-sample transcendentals (the render-throughput hot loop of the
    // batch dataset tier; bench/ism_batch).
    const double x0 = static_cast<double>(n0) - tau;
    double sinPiX = std::sin(kPi * x0);
    double hannCos = std::cos(kPi * x0 / W);
    double hannSin = std::sin(kPi * x0 / W);
    for (int n = n0; n <= n1; ++n) {
      const double x = static_cast<double>(n) - tau;
      if (x == 0.0) {
        // Exact integer delay: sinc(0) * hann(0) = 1, reproduced exactly.
        trace[static_cast<std::size_t>(n)] += amp;
      } else {
        const double hann = 0.5 * (1.0 + hannCos);
        trace[static_cast<std::size_t>(n)] += amp * hann * sinPiX / (kPi * x);
      }
      const double next = hannCos * cosStep - hannSin * sinStep;
      hannSin = hannSin * cosStep + hannCos * sinStep;
      hannCos = next;
      sinPiX = -sinPiX;
    }
  }
  return trace;
}

std::vector<std::vector<double>> IsmEngine::render() const {
  std::vector<std::vector<double>> traces;
  traces.reserve(config_.receivers.size());
  for (std::size_t r = 0; r < config_.receivers.size(); ++r) {
    traces.push_back(renderReceiver(r));
  }
  return traces;
}

}  // namespace lifta::ism
