#include "geophys/lift_kernels.hpp"

namespace lifta::geophys {

using namespace lifta::ir;

namespace {

arith::Expr sz(const char* name) { return arith::Expr::var(name); }

struct RealOps {
  ScalarKind kind;
  TypePtr type() const { return Type::scalar(kind); }
  ExprPtr lit(double v) const { return litFloat(v, kind); }
};

/// val y = i / nx; val x = i - y*nx  (decomposition without a Mod op).
struct CellCoords {
  ExprPtr x, y;
};

ExprPtr withCoords(const ExprPtr& i, const ExprPtr& nx, const ExprPtr& xP,
                   const ExprPtr& yP, ExprPtr body) {
  return let(yP, i / nx, let(xP, i - yP * nx, std::move(body)));
}

ExprPtr andB(ExprPtr a, ExprPtr b) {
  return binary(BinOp::And, std::move(a), std::move(b));
}

}  // namespace

memory::KernelDef liftEmEzKernel(ScalarKind real) {
  const RealOps R{real};
  auto realArr = Type::array(R.type(), sz("cells"));
  auto ez = param("ez", realArr);
  auto hx = param("hx", realArr);
  auto hy = param("hy", realArr);
  auto ca = param("ca", realArr);
  auto cb = param("cb", realArr);
  auto nx = param("nx", Type::int_());
  auto ny = param("ny", Type::int_());
  auto cells = param("cells", Type::int_());

  auto i = param("i", nullptr);
  auto xP = param("x", nullptr);
  auto yP = param("y", nullptr);

  auto interior = andB(
      andB(binary(BinOp::Ge, xP, litInt(1)),
           binary(BinOp::Le, xP, nx - litInt(2))),
      andB(binary(BinOp::Ge, yP, litInt(1)),
           binary(BinOp::Le, yP, ny - litInt(2))));
  // ca[i]*ez[i] + cb[i]*((hy[i]-hy[i-1]) - (hx[i]-hx[i-nx]))
  auto curl = (arrayAccess(hy, i) - arrayAccess(hy, i - litInt(1))) -
              (arrayAccess(hx, i) - arrayAccess(hx, i - nx));
  auto updated =
      arrayAccess(ca, i) * arrayAccess(ez, i) + arrayAccess(cb, i) * curl;
  auto body = withCoords(
      i, nx, xP, yP,
      writeTo(arrayAccess(ez, i),
              select(interior, updated, arrayAccess(ez, i))));

  memory::KernelDef def;
  def.name = "lift_em_ez";
  def.real = real;
  def.params = {ez, hx, hy, ca, cb, nx, ny, cells};
  def.body = mapGlb(lambda({i}, body), iota(sz("cells")));
  return def;
}

memory::KernelDef liftEmHKernel(ScalarKind real) {
  const RealOps R{real};
  auto realArr = Type::array(R.type(), sz("cells"));
  auto hx = param("hx", realArr);
  auto hy = param("hy", realArr);
  auto ez = param("ez", realArr);
  auto nx = param("nx", Type::int_());
  auto ny = param("ny", Type::int_());
  auto cells = param("cells", Type::int_());
  auto s = param("S", R.type());

  auto i = param("i", nullptr);
  auto xP = param("x", nullptr);
  auto yP = param("y", nullptr);

  auto hxOk = binary(BinOp::Le, yP, ny - litInt(2));
  auto hyOk = binary(BinOp::Le, xP, nx - litInt(2));
  auto hxNew =
      arrayAccess(hx, i) - s * (arrayAccess(ez, i + nx) - arrayAccess(ez, i));
  auto hyNew = arrayAccess(hy, i) +
               s * (arrayAccess(ez, i + litInt(1)) - arrayAccess(ez, i));
  // The §VIII shape: one volume kernel, two arrays updated in place.
  auto body = withCoords(
      i, nx, xP, yP,
      makeTuple({writeTo(arrayAccess(hx, i),
                         select(hxOk, hxNew, arrayAccess(hx, i))),
                 writeTo(arrayAccess(hy, i),
                         select(hyOk, hyNew, arrayAccess(hy, i)))}));

  memory::KernelDef def;
  def.name = "lift_em_h";
  def.real = real;
  def.params = {hx, hy, ez, nx, ny, cells, s};
  def.body = mapGlb(lambda({i}, body), iota(sz("cells")));
  return def;
}

memory::KernelDef liftEmHxKernel(ScalarKind real) {
  const RealOps R{real};
  auto realArr = Type::array(R.type(), sz("cells"));
  auto hx = param("hx", realArr);
  auto ez = param("ez", realArr);
  auto nx = param("nx", Type::int_());
  auto ny = param("ny", Type::int_());
  auto cells = param("cells", Type::int_());
  auto s = param("S", R.type());

  auto i = param("i", nullptr);
  auto xP = param("x", nullptr);
  auto yP = param("y", nullptr);
  auto hxOk = binary(BinOp::Le, yP, ny - litInt(2));
  auto hxNew =
      arrayAccess(hx, i) - s * (arrayAccess(ez, i + nx) - arrayAccess(ez, i));
  auto body = withCoords(i, nx, xP, yP,
                         writeTo(arrayAccess(hx, i),
                                 select(hxOk, hxNew, arrayAccess(hx, i))));
  memory::KernelDef def;
  def.name = "lift_em_hx";
  def.real = real;
  def.params = {hx, ez, nx, ny, cells, s};
  def.body = mapGlb(lambda({i}, body), iota(sz("cells")));
  return def;
}

memory::KernelDef liftEmHyKernel(ScalarKind real) {
  const RealOps R{real};
  auto realArr = Type::array(R.type(), sz("cells"));
  auto hy = param("hy", realArr);
  auto ez = param("ez", realArr);
  auto nx = param("nx", Type::int_());
  auto ny = param("ny", Type::int_());
  auto cells = param("cells", Type::int_());
  auto s = param("S", R.type());

  auto i = param("i", nullptr);
  auto xP = param("x", nullptr);
  auto yP = param("y", nullptr);
  auto hyOk = binary(BinOp::Le, xP, nx - litInt(2));
  auto hyNew = arrayAccess(hy, i) +
               s * (arrayAccess(ez, i + litInt(1)) - arrayAccess(ez, i));
  auto body = withCoords(i, nx, xP, yP,
                         writeTo(arrayAccess(hy, i),
                                 select(hyOk, hyNew, arrayAccess(hy, i))));
  memory::KernelDef def;
  def.name = "lift_em_hy";
  def.real = real;
  def.params = {hy, ez, nx, ny, cells, s};
  def.body = mapGlb(lambda({i}, body), iota(sz("cells")));
  return def;
}

}  // namespace lifta::geophys
