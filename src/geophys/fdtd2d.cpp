#include "geophys/fdtd2d.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace lifta::geophys {

void Scene::deriveCoefficients() {
  ca.resize(cells());
  cb.resize(cells());
  for (std::size_t i = 0; i < cells(); ++i) {
    const double loss = sigma[i] * kCourant2D / (2.0 * epsR[i]);
    ca[i] = (1.0 - loss) / (1.0 + loss);
    cb[i] = (kCourant2D / epsR[i]) / (1.0 + loss);
  }
}

namespace {

Scene blankScene(int nx, int ny, int fringe) {
  LIFTA_CHECK(nx > 2 * fringe + 4 && ny > 2 * fringe + 4,
              "scene too small for the absorbing fringe");
  Scene s;
  s.nx = nx;
  s.ny = ny;
  s.epsR.assign(s.cells(), 1.0);
  s.sigma.assign(s.cells(), 0.0);
  // Quadratic conductivity ramp toward every edge: a crude PML stand-in
  // that absorbs outgoing waves over `fringe` cells.
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const int d = std::min(std::min(x, nx - 1 - x), std::min(y, ny - 1 - y));
      if (d < fringe) {
        const double depth = static_cast<double>(fringe - d) / fringe;
        s.sigma[s.at(x, y)] = 0.9 * depth * depth;
      }
    }
  }
  return s;
}

}  // namespace

Scene buildFreeSpaceScene(int nx, int ny, int fringe) {
  Scene s = blankScene(nx, ny, fringe);
  s.deriveCoefficients();
  return s;
}

Scene buildGprScene(int nx, int ny, int fringe, double soilEps,
                    double objectEps, int objectRadius) {
  Scene s = blankScene(nx, ny, fringe);
  // Subsurface: lower 60% of the domain is soil with mild loss.
  const int surfaceY = (ny * 2) / 5;
  for (int y = surfaceY; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      s.epsR[s.at(x, y)] = soilEps;
      s.sigma[s.at(x, y)] = std::max(s.sigma[s.at(x, y)], 0.002);
    }
  }
  // Buried object: a circle of high permittivity below the surface.
  const int cx = nx / 2;
  const int cy = surfaceY + (ny - surfaceY) / 2;
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      const int dx = x - cx;
      const int dy = y - cy;
      if (dx * dx + dy * dy <= objectRadius * objectRadius) {
        s.epsR[s.at(x, y)] = objectEps;
      }
    }
  }
  s.deriveCoefficients();
  return s;
}

template <typename T>
void refEzUpdate(T* ez, const T* hx, const T* hy, const T* ca, const T* cb,
                 int nx, int ny) {
  const std::int64_t cells = static_cast<std::int64_t>(nx) * ny;
  for (std::int64_t i = 0; i < cells; ++i) {
    const std::int64_t y = i / nx;
    const std::int64_t x = i - y * nx;
    const bool interior = x >= 1 && x <= nx - 2 && y >= 1 && y <= ny - 2;
    // The select form (always write; edges re-write their old value) keeps
    // the arithmetic identical to the generated kernels.
    ez[i] = interior
                ? ca[i] * ez[i] +
                      cb[i] * ((hy[i] - hy[i - 1]) - (hx[i] - hx[i - nx]))
                : ez[i];
  }
}

template <typename T>
void refHUpdate(T* hx, T* hy, const T* ez, int nx, int ny, T courant) {
  const std::int64_t cells = static_cast<std::int64_t>(nx) * ny;
  for (std::int64_t i = 0; i < cells; ++i) {
    const std::int64_t y = i / nx;
    const std::int64_t x = i - y * nx;
    hx[i] = (y <= ny - 2) ? hx[i] - courant * (ez[i + nx] - ez[i]) : hx[i];
    hy[i] = (x <= nx - 2) ? hy[i] + courant * (ez[i + 1] - ez[i]) : hy[i];
  }
}

template <typename T>
Fdtd2d<T>::Fdtd2d(Scene scene) : scene_(std::move(scene)) {
  const std::size_t n = scene_.cells();
  ez_.assign(n, T(0));
  hx_.assign(n, T(0));
  hy_.assign(n, T(0));
  ca_.assign(scene_.ca.begin(), scene_.ca.end());
  cb_.assign(scene_.cb.begin(), scene_.cb.end());
}

template <typename T>
void Fdtd2d<T>::inject(int x, int y, T amplitude) {
  ez_[scene_.at(x, y)] += amplitude;
}

template <typename T>
void Fdtd2d<T>::step() {
  // H then E, the conventional leapfrog order.
  refHUpdate(hx_.data(), hy_.data(), ez_.data(), scene_.nx, scene_.ny,
             static_cast<T>(kCourant2D));
  refEzUpdate(ez_.data(), hx_.data(), hy_.data(), ca_.data(), cb_.data(),
              scene_.nx, scene_.ny);
  ++steps_;
}

template <typename T>
double Fdtd2d<T>::energy() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < ez_.size(); ++i) {
    sum += static_cast<double>(ez_[i]) * ez_[i] +
           static_cast<double>(hx_[i]) * hx_[i] +
           static_cast<double>(hy_[i]) * hy_[i];
  }
  return sum;
}

#define LIFTA_EM_INSTANTIATE(T)                                            \
  template void refEzUpdate<T>(T*, const T*, const T*, const T*, const T*, \
                               int, int);                                  \
  template void refHUpdate<T>(T*, T*, const T*, int, int, T);              \
  template class Fdtd2d<T>

LIFTA_EM_INSTANTIATE(float);
LIFTA_EM_INSTANTIATE(double);
#undef LIFTA_EM_INSTANTIATE

}  // namespace lifta::geophys
