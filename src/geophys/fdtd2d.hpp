// "Beyond Room Acoustics Simulations" (paper §VIII): a 2D TMz
// electromagnetic FDTD substrate in the style of ground-penetrating radar
// (gprMax [17]) / reverse-time migration. The section's point is that these
// models need the *volume* kernels to update several arrays in place —
// electric and magnetic fields separately, each dimension independently —
// which is exactly what the WriteTo/Tuple machinery enables. This module
// provides the scene construction and the portable reference kernels; the
// LIFT versions live in src/geophys/lift_kernels.*.
//
// Scheme (normalized Yee grid, c = Δ = 1, Courant number S ≤ 1/√2):
//   Ez[i,j] = ca[i,j]*Ez + cb[i,j]*((Hy[i,j]-Hy[i-1,j]) - (Hx[i,j]-Hx[i,j-1]))
//   Hx[i,j] -= S*(Ez[i,j+1]-Ez[i,j])
//   Hy[i,j] += S*(Ez[i+1,j]-Ez[i,j])
// with per-cell ca/cb from relative permittivity and conductivity:
//   loss = sigma*S/(2*eps), ca = (1-loss)/(1+loss), cb = (S/eps)/(1+loss).
// Absorption at the domain edge uses a conductivity ramp (a simple lossy
// fringe standing in for a PML; documented substitution).
#pragma once

#include <cstdint>
#include <vector>

namespace lifta::geophys {

inline constexpr double kCourant2D = 0.7;  // < 1/sqrt(2)

/// A 2D material scene with precomputed update coefficients.
struct Scene {
  int nx = 0;
  int ny = 0;
  std::vector<double> epsR;   // relative permittivity per cell
  std::vector<double> sigma;  // conductivity per cell
  std::vector<double> ca;     // derived Ez coefficients
  std::vector<double> cb;

  std::size_t cells() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  }
  std::size_t at(int x, int y) const {
    return static_cast<std::size_t>(y) * nx + x;
  }

  /// Recomputes ca/cb from epsR/sigma.
  void deriveCoefficients();
};

/// A GPR-style scene: air above a layered subsurface with a buried circular
/// object of high permittivity, and an absorbing conductivity fringe of
/// `fringe` cells on every edge.
Scene buildGprScene(int nx, int ny, int fringe = 10, double soilEps = 4.0,
                    double objectEps = 20.0, int objectRadius = 6);

/// Uniform free-space scene with an absorbing fringe (for physics tests).
Scene buildFreeSpaceScene(int nx, int ny, int fringe = 10);

// --- reference kernels (the oracle for the LIFT tier) ----------------------

/// Ez update, in place. Every interior cell is written; edge cells keep
/// their value (expressed as a select so generated code matches bitwise).
template <typename T>
void refEzUpdate(T* ez, const T* hx, const T* hy, const T* ca, const T* cb,
                 int nx, int ny);

/// Hx and Hy update, both in place, one fused pass (the §VIII shape).
template <typename T>
void refHUpdate(T* hx, T* hy, const T* ez, int nx, int ny, T courant);

/// Reference time-stepping driver with a soft source.
template <typename T>
class Fdtd2d {
public:
  explicit Fdtd2d(Scene scene);

  const Scene& scene() const { return scene_; }

  /// Adds to Ez at (x, y) — a soft source.
  void inject(int x, int y, T amplitude);

  void step();
  int stepsTaken() const { return steps_; }

  T ez(int x, int y) const { return ez_[scene_.at(x, y)]; }
  const std::vector<T>& ezField() const { return ez_; }
  const std::vector<T>& hxField() const { return hx_; }
  const std::vector<T>& hyField() const { return hy_; }

  double energy() const;

private:
  Scene scene_;
  std::vector<T> ez_, hx_, hy_, ca_, cb_;
  int steps_ = 0;
};

extern template class Fdtd2d<float>;
extern template class Fdtd2d<double>;

}  // namespace lifta::geophys
