// The §VIII geophysics kernels in LIFT IR.
//
// Both kernels are *volume* kernels with in-place updates — the capability
// the paper's §VIII argues is "even more critical" for electromagnetic
// models than for room acoustics:
//   * liftEmEzKernel  — Ez updated in place with per-cell (multi-material)
//     coefficients;
//   * liftEmHKernel   — Hx AND Hy updated in place by one kernel, i.e. a
//     Tuple of WriteTo results over the whole grid, not just at boundary
//     points;
//   * liftEmHxKernel / liftEmHyKernel — the same updates as two separate
//     kernels, used by the ablation bench to quantify what the fused
//     multi-output kernel buys.
#pragma once

#include "memory/kernel_def.hpp"

namespace lifta::geophys {

/// Params: ez, hx, hy, ca, cb, nx, ny, cells. In place on ez.
memory::KernelDef liftEmEzKernel(ir::ScalarKind real);

/// Params: hx, hy, ez, nx, ny, cells, S. In place on hx and hy.
memory::KernelDef liftEmHKernel(ir::ScalarKind real);

/// Split variants (one output each), same parameters as liftEmHKernel
/// minus the unused field.
memory::KernelDef liftEmHxKernel(ir::ScalarKind real);
memory::KernelDef liftEmHyKernel(ir::ScalarKind real);

}  // namespace lifta::geophys
