#include "harness/launcher.hpp"

#include "common/error.hpp"

namespace lifta::harness {

void bindKernelArgs(ocl::Kernel& kernel, const memory::MemoryPlan& plan,
                    const ArgMap& values) {
  for (std::size_t slot = 0; slot < plan.args.size(); ++slot) {
    const auto& arg = plan.args[slot];
    auto it = values.find(arg.name);
    if (it == values.end()) {
      throw Error("kernel argument '" + arg.name + "' not provided");
    }
    const ArgValue& v = it->second;
    const int i = static_cast<int>(slot);
    if (arg.isArray) {
      if (!std::holds_alternative<ocl::BufferPtr>(v)) {
        throw Error("kernel argument '" + arg.name + "' must be a buffer");
      }
      kernel.setArg(i, std::get<ocl::BufferPtr>(v));
      continue;
    }
    switch (arg.type->scalarKind()) {
      case ir::ScalarKind::Int:
      case ir::ScalarKind::Bool:
        if (!std::holds_alternative<int>(v)) {
          throw Error("kernel argument '" + arg.name + "' must be int");
        }
        kernel.setArg(i, std::get<int>(v));
        break;
      case ir::ScalarKind::Float:
        if (!std::holds_alternative<float>(v)) {
          throw Error("kernel argument '" + arg.name + "' must be float");
        }
        kernel.setArg(i, std::get<float>(v));
        break;
      case ir::ScalarKind::Double:
        if (!std::holds_alternative<double>(v)) {
          throw Error("kernel argument '" + arg.name + "' must be double");
        }
        kernel.setArg(i, std::get<double>(v));
        break;
    }
  }
}

ocl::NDRange launchConfig(std::size_t n, std::size_t local,
                          std::size_t maxGlobal) {
  LIFTA_CHECK(local > 0, "local size must be positive");
  // Round n up to a multiple of local, then cap: generated kernels use
  // grid-stride loops, so fewer work-items than elements is fine.
  std::size_t global = (n + local - 1) / local * local;
  if (global > maxGlobal) {
    global = maxGlobal / local * local;
    if (global == 0) global = local;
  }
  if (global == 0) global = local;
  return ocl::NDRange::linear(global, local);
}

ocl::NDRange launchConfigFor(const codegen::GeneratedKernel& gen,
                             std::size_t n, std::size_t local,
                             std::size_t maxGlobal) {
  if (gen.preferredChunk <= 0) return launchConfig(n, local, maxGlobal);
  const auto chunk = static_cast<std::size_t>(gen.preferredChunk);
  std::size_t items = (n + chunk - 1) / chunk;
  if (items < 256) items = 256;
  if (items > n) items = n;
  if (items == 0) items = 1;
  return launchConfig(items, local, maxGlobal);
}

}  // namespace lifta::harness
