#include "harness/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace lifta::harness {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::addRow(std::vector<std::string> cells) {
  LIFTA_CHECK(cells.size() == headers_.size(),
              "table row width does not match headers");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    out << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmtMs(double ms) { return strformat("%.3f", ms); }

std::string fmtMups(double mups) {
  if (mups >= 1000.0) return strformat("%.2f G", mups / 1000.0);
  return strformat("%.1f M", mups);
}

}  // namespace lifta::harness
