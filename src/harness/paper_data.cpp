#include "harness/paper_data.hpp"

namespace lifta::harness {

namespace {
constexpr const char* kTitan = "NVIDIA TITAN Black";
constexpr const char* kAmd7970 = "AMD Radeon HD 7970";
constexpr const char* kR9 = "AMD Radeon R9 295X2";
constexpr const char* kGtx780 = "NVIDIA GTX 780";
}  // namespace

const std::vector<PaperRow>& paperTable4() {
  // Table IV: median run times (ms) for the naive FI kernel, box rooms.
  static const std::vector<PaperRow> rows = {
      {kTitan, "OpenCL", "602", "", 8.19, 11.33},
      {kTitan, "LIFT", "602", "", 6.93, 11.55},
      {kTitan, "OpenCL", "336", "", 4.01, 5.16},
      {kTitan, "LIFT", "336", "", 3.51, 5.91},
      {kTitan, "OpenCL", "302", "", 0.97, 1.37},
      {kTitan, "LIFT", "302", "", 0.84, 1.45},
      {kAmd7970, "OpenCL", "602", "", 5.05, 10.66},
      {kAmd7970, "LIFT", "602", "", 4.97, 10.31},
      {kAmd7970, "OpenCL", "336", "", 2.70, 5.68},
      {kAmd7970, "LIFT", "336", "", 2.70, 5.70},
      {kAmd7970, "OpenCL", "302", "", 0.66, 1.41},
      {kAmd7970, "LIFT", "302", "", 0.64, 1.31},
      {kR9, "OpenCL", "602", "", 4.89, 10.10},
      {kR9, "LIFT", "602", "", 5.05, 9.18},
      {kR9, "OpenCL", "336", "", 2.93, 4.91},
      {kR9, "LIFT", "336", "", 2.96, 5.09},
      {kR9, "OpenCL", "302", "", 0.60, 1.19},
      {kR9, "LIFT", "302", "", 0.69, 1.16},
      {kGtx780, "OpenCL", "602", "", 9.21, 12.30},
      {kGtx780, "LIFT", "602", "", 7.59, 13.24},
      {kGtx780, "OpenCL", "336", "", 4.57, 5.65},
      {kGtx780, "LIFT", "336", "", 3.85, 6.79},
      {kGtx780, "OpenCL", "302", "", 1.23, 1.52},
      {kGtx780, "LIFT", "302", "", 1.04, 1.69},
  };
  return rows;
}

const std::vector<PaperRow>& paperTable5() {
  // Table V: FI-MM boundary kernel median run times (ms).
  static const std::vector<PaperRow> rows = {
      {kR9, "OpenCL", "602", "box", 0.28, 0.51},
      {kR9, "LIFT", "602", "box", 0.28, 0.35},
      {kR9, "OpenCL", "302", "box", 0.07, 0.13},
      {kR9, "LIFT", "302", "box", 0.07, 0.09},
      {kR9, "OpenCL", "336", "box", 0.32, 0.60},
      {kR9, "LIFT", "336", "box", 0.33, 0.37},
      {kAmd7970, "OpenCL", "602", "box", 0.27, 0.34},
      {kAmd7970, "LIFT", "602", "box", 0.27, 0.34},
      {kAmd7970, "OpenCL", "302", "box", 0.07, 0.08},
      {kAmd7970, "LIFT", "302", "box", 0.07, 0.08},
      {kAmd7970, "OpenCL", "336", "box", 0.29, 0.33},
      {kAmd7970, "LIFT", "336", "box", 0.29, 0.33},
      {kGtx780, "OpenCL", "602", "box", 0.27, 0.33},
      {kGtx780, "LIFT", "602", "box", 0.27, 0.34},
      {kGtx780, "OpenCL", "302", "box", 0.06, 0.08},
      {kGtx780, "LIFT", "302", "box", 0.06, 0.08},
      {kGtx780, "OpenCL", "336", "box", 0.25, 0.34},
      {kGtx780, "LIFT", "336", "box", 0.25, 0.34},
      {kTitan, "OpenCL", "602", "box", 0.29, 0.31},
      {kTitan, "LIFT", "602", "box", 0.28, 0.36},
      {kTitan, "OpenCL", "302", "box", 0.06, 0.07},
      {kTitan, "LIFT", "302", "box", 0.06, 0.09},
      {kTitan, "OpenCL", "336", "box", 0.30, 0.29},
      {kTitan, "LIFT", "336", "box", 0.28, 0.40},
      {kR9, "OpenCL", "602", "dome", 0.34, 0.48},
      {kR9, "LIFT", "602", "dome", 0.34, 0.37},
      {kR9, "OpenCL", "302", "dome", 0.08, 0.11},
      {kR9, "LIFT", "302", "dome", 0.08, 0.08},
      {kR9, "OpenCL", "336", "dome", 0.28, 0.33},
      {kR9, "LIFT", "336", "dome", 0.28, 0.27},
      {kAmd7970, "OpenCL", "602", "dome", 0.32, 0.38},
      {kAmd7970, "LIFT", "602", "dome", 0.31, 0.38},
      {kAmd7970, "OpenCL", "302", "dome", 0.08, 0.09},
      {kAmd7970, "LIFT", "302", "dome", 0.08, 0.09},
      {kAmd7970, "OpenCL", "336", "dome", 0.25, 0.28},
      {kAmd7970, "LIFT", "336", "dome", 0.25, 0.28},
      {kGtx780, "OpenCL", "602", "dome", 0.28, 0.38},
      {kGtx780, "LIFT", "602", "dome", 0.29, 0.38},
      {kGtx780, "OpenCL", "302", "dome", 0.06, 0.09},
      {kGtx780, "LIFT", "302", "dome", 0.06, 0.09},
      {kGtx780, "OpenCL", "336", "dome", 0.19, 0.30},
      {kGtx780, "LIFT", "336", "dome", 0.21, 0.30},
      {kTitan, "OpenCL", "602", "dome", 0.30, 0.32},
      {kTitan, "LIFT", "602", "dome", 0.29, 0.37},
      {kTitan, "OpenCL", "302", "dome", 0.06, 0.07},
      {kTitan, "LIFT", "302", "dome", 0.06, 0.08},
      {kTitan, "OpenCL", "336", "dome", 0.24, 0.25},
      {kTitan, "LIFT", "336", "dome", 0.20, 0.25},
  };
  return rows;
}

const std::vector<PaperRow>& paperTable6() {
  // Table VI: FD-MM boundary kernel (branch value 3) median run times (ms).
  static const std::vector<PaperRow> rows = {
      {kR9, "OpenCL", "602", "box", 0.52, 1.05},
      {kR9, "LIFT", "602", "box", 0.47, 0.94},
      {kR9, "OpenCL", "302", "box", 0.12, 0.26},
      {kR9, "LIFT", "302", "box", 0.12, 0.23},
      {kR9, "OpenCL", "336", "box", 0.49, 0.69},
      {kR9, "LIFT", "336", "box", 0.44, 0.64},
      {kAmd7970, "OpenCL", "602", "box", 0.57, 0.93},
      {kAmd7970, "LIFT", "602", "box", 0.54, 0.85},
      {kAmd7970, "OpenCL", "302", "box", 0.13, 0.22},
      {kAmd7970, "LIFT", "302", "box", 0.13, 0.21},
      {kAmd7970, "OpenCL", "336", "box", 0.50, 0.71},
      {kAmd7970, "LIFT", "336", "box", 0.47, 0.69},
      {kGtx780, "OpenCL", "602", "box", 0.48, 0.78},
      {kGtx780, "LIFT", "602", "box", 0.52, 0.76},
      {kGtx780, "OpenCL", "302", "box", 0.11, 0.18},
      {kGtx780, "LIFT", "302", "box", 0.12, 0.18},
      {kGtx780, "OpenCL", "336", "box", 0.36, 0.61},
      {kGtx780, "LIFT", "336", "box", 0.38, 0.59},
      {kTitan, "OpenCL", "602", "box", 0.49, 0.83},
      {kTitan, "LIFT", "602", "box", 0.50, 0.87},
      {kTitan, "OpenCL", "302", "box", 0.11, 0.20},
      {kTitan, "LIFT", "302", "box", 0.12, 0.21},
      {kTitan, "OpenCL", "336", "box", 0.40, 0.55},
      {kTitan, "LIFT", "336", "box", 0.40, 0.60},
      {kR9, "OpenCL", "602", "dome", 0.45, 0.66},
      {kR9, "LIFT", "602", "dome", 0.46, 0.68},
      {kR9, "OpenCL", "302", "dome", 0.11, 0.17},
      {kR9, "LIFT", "302", "dome", 0.11, 0.17},
      {kR9, "OpenCL", "336", "dome", 0.37, 0.41},
      {kR9, "LIFT", "336", "dome", 0.35, 0.42},
      {kAmd7970, "OpenCL", "602", "dome", 0.48, 0.70},
      {kAmd7970, "LIFT", "602", "dome", 0.48, 0.70},
      {kAmd7970, "OpenCL", "302", "dome", 0.12, 0.17},
      {kAmd7970, "LIFT", "302", "dome", 0.12, 0.17},
      {kAmd7970, "OpenCL", "336", "dome", 0.36, 0.47},
      {kAmd7970, "LIFT", "336", "dome", 0.36, 0.47},
      {kGtx780, "OpenCL", "602", "dome", 0.41, 0.60},
      {kGtx780, "LIFT", "602", "dome", 0.44, 0.63},
      {kGtx780, "OpenCL", "302", "dome", 0.09, 0.15},
      {kGtx780, "LIFT", "302", "dome", 0.10, 0.16},
      {kGtx780, "OpenCL", "336", "dome", 0.29, 0.45},
      {kGtx780, "LIFT", "336", "dome", 0.29, 0.44},
      {kTitan, "OpenCL", "602", "dome", 0.42, 0.56},
      {kTitan, "LIFT", "602", "dome", 0.43, 0.65},
      {kTitan, "OpenCL", "302", "dome", 0.10, 0.14},
      {kTitan, "LIFT", "302", "dome", 0.10, 0.16},
      {kTitan, "OpenCL", "336", "dome", 0.30, 0.36},
      {kTitan, "LIFT", "336", "dome", 0.30, 0.42},
  };
  return rows;
}

std::optional<PaperRow> findPaperRow(const std::vector<PaperRow>& table,
                                     const std::string& platform,
                                     const std::string& version,
                                     const std::string& size,
                                     const std::string& shape) {
  for (const auto& row : table) {
    if (row.platform == platform && row.version == version &&
        row.size == size && (row.shape.empty() || row.shape == shape)) {
      return row;
    }
  }
  return std::nullopt;
}

double paperLiftOverOpenclRatio(const std::vector<PaperRow>& table,
                                bool doublePrecision) {
  double sum = 0.0;
  int n = 0;
  for (const auto& lift : table) {
    if (lift.version != "LIFT") continue;
    const auto cl =
        findPaperRow(table, lift.platform, "OpenCL", lift.size, lift.shape);
    if (!cl) continue;
    const double a = doublePrecision ? lift.doubleMs : lift.singleMs;
    const double b = doublePrecision ? cl->doubleMs : cl->singleMs;
    if (b > 0.0) {
      sum += a / b;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace lifta::harness
