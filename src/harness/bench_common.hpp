// Common benchmark options, room selection and timing for the bench/
// binaries that regenerate the paper's tables and figures.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "acoustics/geometry.hpp"
#include "acoustics/step_profiler.hpp"
#include "common/cli.hpp"
#include "ocl/device.hpp"

namespace lifta::harness {

struct BenchOptions {
  /// Paper-size rooms (Table II). Default: proportionally scaled rooms so
  /// the whole suite completes quickly on one CPU core; the labels keep the
  /// paper's size names so rows are directly comparable.
  bool full = false;
  int iters = 15;    // timing iterations (paper: 2000)
  int warmup = 3;
  std::size_t localSize = 64;   // work-group size after hand-tuning
  /// --autotune: pick the work-group size per row with
  /// harness::autotuneWorkGroup instead of using `localSize` (§VI's
  /// "hand-tuned by workgroup size", automated).
  bool autotune = false;
  int branches = 3;             // FD-MM branch count (paper: 3)
  /// Run the row set for all four Table III platforms (one host CPU
  /// underneath; see the banner each bench prints).
  bool allPlatforms = false;

  static BenchOptions fromArgs(int argc, const char* const* argv);
};

struct SizedRoom {
  std::string label;       // the paper's size name ("602", "336", "302")
  acoustics::Room room;
};

/// The three Table II rooms, scaled down ~8x per dimension by default.
std::vector<SizedRoom> benchRooms(acoustics::RoomShape shape, bool full);

/// Platforms to report: the four Table III profiles with --all-platforms,
/// otherwise just the native host device.
std::vector<ocl::DeviceProfile> benchPlatforms(const BenchOptions& opt);

/// Times `launch` (which must perform one kernel execution and return its
/// event milliseconds) and returns the median over opt.iters runs.
double medianKernelMs(const std::function<double()>& launch,
                      const BenchOptions& opt);

/// Mega-updates per second for `updates` grid/boundary points per launch.
double mups(std::size_t updates, double medianMs);

/// Standard banner explaining the simulation substitution.
void printBenchBanner(const std::string& title, const BenchOptions& opt);

/// Verdict string for the LIFT-vs-OpenCL parity checks (figs 4-6). The
/// paper's claim is "on par" (ratio ~0.85-1.20x); with the codegen
/// optimizer enabled the generated kernels can legitimately beat the
/// hand-written baseline, which is reported as exceeding the paper rather
/// than deviating from it.
const char* parityVerdict(double liftOverOpenclRatio);

/// Prints a StepProfiler report (per-kernel medians, boundary share,
/// throughput, step-time histogram) for one instrumented simulation run.
void printStepProfile(const std::string& label,
                      const acoustics::StepProfiler& profiler);

/// One row of the FD-MM per-class boundary breakdown: the topology class,
/// its point count and the median wall time of its branch-free class
/// kernel (mixed fallback for the corner class) run over its slot range of
/// the class-major sorted layout. Empty classes are omitted.
struct BoundaryClassTiming {
  int cls = 0;
  std::int32_t count = 0;
  double ms = 0.0;
};

/// Times the FD-MM boundary phase class by class (serial, opt.iters
/// samples, tiny classes amortized over repeats) for the room's boundary
/// topology. Shares are against the summed per-class time.
std::vector<BoundaryClassTiming> fdmmClassBreakdown(
    const acoustics::Room& room, const BenchOptions& opt);

/// Renders the fdmmClassBreakdown rows as a table (class, nbr, points, ms,
/// share).
std::string renderClassBreakdown(const std::vector<BoundaryClassTiming>& rows);

}  // namespace lifta::harness
