// Shared device-side setup for the acoustics benchmarks: uploads one room's
// grids/boundary data/material tables and hands out launch-ready kernels in
// either implementation tier —
//   Impl::Handwritten : the hand-written OpenCL baseline (src/acoustics)
//   Impl::Lift        : the LIFT-generated kernel (src/lift_acoustics)
// Both tiers execute through the same simulated OpenCL runtime, which is
// exactly the comparison Figures 4-6 make.
#pragma once

#include <memory>
#include <string>

#include "acoustics/cl_kernels.hpp"
#include "acoustics/geometry.hpp"
#include "acoustics/materials.hpp"
#include "acoustics/sim_params.hpp"
#include "codegen/kernel_codegen.hpp"
#include "common/rng.hpp"
#include "harness/autotune.hpp"
#include "harness/launcher.hpp"
#include "lift_acoustics/kernels.hpp"
#include "ocl/runtime.hpp"

namespace lifta::harness {

enum class Impl { Handwritten, Lift };

inline const char* implName(Impl i) {
  return i == Impl::Handwritten ? "OpenCL" : "LIFT";
}

template <typename T>
constexpr ir::ScalarKind realKindOf() {
  return std::is_same_v<T, float> ? ir::ScalarKind::Float
                                  : ir::ScalarKind::Double;
}

inline const char* precisionName(ir::ScalarKind k) {
  return k == ir::ScalarKind::Double ? "Double" : "Single";
}

/// A kernel bound to its arguments and launch configuration.
struct BoundKernel {
  std::shared_ptr<ocl::Kernel> kernel;
  ocl::NDRange range;

  ocl::Event run(ocl::CommandQueue& q) { return q.enqueueNDRange(*kernel, range); }
};

/// Work-group size for one bench configuration: the fixed size from the
/// command line, or — with --autotune — autotuneWorkGroup's pick over the
/// candidate set, re-binding the kernel at each candidate. The JIT kernel
/// cache makes the repeated rebuilds cheap.
template <typename MakeBound>
std::size_t pickLocalSize(ocl::Context& ctx, bool autotune, std::size_t fixed,
                          MakeBound&& make) {
  if (!autotune) return fixed;
  ocl::CommandQueue q(ctx);
  return autotuneWorkGroup([&](std::size_t ls) {
           auto bound = make(ls);
           return bound.run(q).milliseconds;
         })
      .bestLocalSize;
}

template <typename T>
class AcousticBench {
public:
  AcousticBench(ocl::Context& ctx, const acoustics::Room& room,
                int numMaterials, int branches, std::uint64_t seed = 42)
      : ctx_(ctx), q_(ctx), branches_(branches) {
    grid_ = acoustics::voxelizeCached(room, numMaterials);
    const auto mats = acoustics::defaultMaterials(numMaterials, branches);
    const auto fd =
        acoustics::deriveFdCoeffs(mats, branches, params_.Ts());

    Rng rng(seed);
    const std::size_t cells = grid_->cells();
    std::vector<T> prev(cells, T(0)), curr(cells, T(0)), next(cells, T(0));
    for (std::size_t i = 0; i < cells; ++i) {
      if (grid_->nbrs[i] > 0) {
        prev[i] = static_cast<T>(rng.uniform(-0.1, 0.1));
        curr[i] = static_cast<T>(rng.uniform(-0.1, 0.1));
      }
    }
    std::vector<T> beta, bi, d, di, f;
    for (const auto& m : mats) beta.push_back(static_cast<T>(m.beta));
    for (double v : fd.BI) bi.push_back(static_cast<T>(v));
    for (double v : fd.D) d.push_back(static_cast<T>(v));
    for (double v : fd.DI) di.push_back(static_cast<T>(v));
    for (double v : fd.F) f.push_back(static_cast<T>(v));
    const std::size_t stateLen =
        static_cast<std::size_t>(branches) * grid_->boundaryPoints();
    std::vector<T> g1(stateLen, T(0)), v1(stateLen, T(0)), v2(stateLen, T(0));
    for (std::size_t i = 0; i < stateLen; ++i) {
      g1[i] = static_cast<T>(rng.uniform(-0.01, 0.01));
      v2[i] = static_cast<T>(rng.uniform(-0.01, 0.01));
    }

    prev_ = upload(ctx_, q_, prev);
    curr_ = upload(ctx_, q_, curr);
    next_ = upload(ctx_, q_, next);
    nbrs_ = upload(ctx_, q_, grid_->nbrs);
    bidx_ = upload(ctx_, q_, grid_->boundaryIndices);
    mat_ = upload(ctx_, q_, grid_->material);
    beta_ = upload(ctx_, q_, beta);
    bi_ = upload(ctx_, q_, bi);
    d_ = upload(ctx_, q_, d);
    di_ = upload(ctx_, q_, di);
    f_ = upload(ctx_, q_, f);
    g1_ = upload(ctx_, q_, g1);
    v1_ = upload(ctx_, q_, v1);
    v2_ = upload(ctx_, q_, v2);
  }

  std::size_t cells() const { return grid_->cells(); }
  std::size_t boundaryPoints() const { return grid_->boundaryPoints(); }
  const acoustics::RoomGrid& grid() const { return *grid_; }

  /// Overrides the optimizer options used for the LIFT tier (defaults to
  /// CodegenOptions::fromEnv(), i.e. optimized unless LIFTA_CODEGEN_OPT=0).
  void setCodegenOptions(const codegen::CodegenOptions& opts) { copts_ = opts; }
  const codegen::CodegenOptions& codegenOptions() const { return copts_; }

  BoundKernel volume(Impl impl, std::size_t local) {
    constexpr auto rk = realKindOf<T>();
    BoundKernel b;
    b.range = launchConfig(cells(), local);
    if (impl == Impl::Handwritten) {
      auto program = ctx_.buildProgram(acoustics::clVolumeSource(rk));
      b.kernel = std::make_shared<ocl::Kernel>(program, "volume_step");
      b.kernel->setArg(0, next_);
      b.kernel->setArg(1, prev_);
      b.kernel->setArg(2, curr_);
      b.kernel->setArg(3, nbrs_);
      b.kernel->setArg(4, nx());
      b.kernel->setArg(5, nxny());
      b.kernel->setArg(6, cellsI());
      b.kernel->setArg(7, l2());
      return b;
    }
    const auto gen =
        codegen::generateKernel(lift_acoustics::liftVolumeKernel(rk), copts_);
    b.range = launchConfigFor(gen, cells(), local);
    auto program = ctx_.buildProgram(gen.source);
    b.kernel = std::make_shared<ocl::Kernel>(program, gen.name);
    bindKernelArgs(*b.kernel, gen.plan,
                   ArgMap{{"prev", prev_},
                          {"curr", curr_},
                          {"nbrs", nbrs_},
                          {"nx", nx()},
                          {"nxny", nxny()},
                          {"cells", cellsI()},
                          {"l2", l2()},
                          {"out", next_}});
    return b;
  }

  BoundKernel fusedFi(Impl impl, std::size_t local) {
    constexpr auto rk = realKindOf<T>();
    BoundKernel b;
    b.range = launchConfig(cells(), local);
    if (impl == Impl::Handwritten) {
      auto program = ctx_.buildProgram(acoustics::clFusedFiSource(rk));
      b.kernel = std::make_shared<ocl::Kernel>(program, "fused_fi");
      b.kernel->setArg(0, next_);
      b.kernel->setArg(1, prev_);
      b.kernel->setArg(2, curr_);
      b.kernel->setArg(3, nbrs_);
      b.kernel->setArg(4, nx());
      b.kernel->setArg(5, nxny());
      b.kernel->setArg(6, cellsI());
      b.kernel->setArg(7, l());
      b.kernel->setArg(8, l2());
      b.kernel->setArg(9, betaScalar());
      return b;
    }
    const auto gen = codegen::generateKernel(
        lift_acoustics::liftFusedFiKernel(rk), copts_);
    b.range = launchConfigFor(gen, cells(), local);
    auto program = ctx_.buildProgram(gen.source);
    b.kernel = std::make_shared<ocl::Kernel>(program, gen.name);
    bindKernelArgs(*b.kernel, gen.plan,
                   ArgMap{{"prev", prev_},
                          {"curr", curr_},
                          {"nbrs", nbrs_},
                          {"nx", nx()},
                          {"nxny", nxny()},
                          {"cells", cellsI()},
                          {"l", l()},
                          {"l2", l2()},
                          {"beta", betaScalar()},
                          {"out", next_}});
    return b;
  }

  BoundKernel fiMm(Impl impl, std::size_t local) {
    constexpr auto rk = realKindOf<T>();
    BoundKernel b;
    b.range = launchConfig(boundaryPoints(), local);
    if (impl == Impl::Handwritten) {
      auto program = ctx_.buildProgram(acoustics::clFiMmBoundarySource(rk));
      b.kernel = std::make_shared<ocl::Kernel>(program, "fimm_boundary");
      b.kernel->setArg(0, next_);
      b.kernel->setArg(1, prev_);
      b.kernel->setArg(2, bidx_);
      b.kernel->setArg(3, nbrs_);
      b.kernel->setArg(4, mat_);
      b.kernel->setArg(5, beta_);
      b.kernel->setArg(6, numBI());
      b.kernel->setArg(7, l());
      return b;
    }
    const auto gen =
        codegen::generateKernel(lift_acoustics::liftFiMmKernel(rk), copts_);
    b.range = launchConfigFor(gen, boundaryPoints(), local);
    auto program = ctx_.buildProgram(gen.source);
    b.kernel = std::make_shared<ocl::Kernel>(program, gen.name);
    bindKernelArgs(*b.kernel, gen.plan,
                   ArgMap{{"boundaryIndices", bidx_},
                          {"material", mat_},
                          {"nbrs", nbrs_},
                          {"beta", beta_},
                          {"next", next_},
                          {"prev", prev_},
                          {"cells", cellsI()},
                          {"numB", numBI()},
                          {"M", numMaterialsI()},
                          {"l", l()}});
    return b;
  }

  BoundKernel fdMm(Impl impl, std::size_t local) {
    constexpr auto rk = realKindOf<T>();
    BoundKernel b;
    b.range = launchConfig(boundaryPoints(), local);
    if (impl == Impl::Handwritten) {
      auto program =
          ctx_.buildProgram(acoustics::clFdMmBoundarySource(rk, branches_));
      b.kernel = std::make_shared<ocl::Kernel>(program, "fdmm_boundary");
      b.kernel->setArg(0, next_);
      b.kernel->setArg(1, prev_);
      b.kernel->setArg(2, g1_);
      b.kernel->setArg(3, v1_);
      b.kernel->setArg(4, v2_);
      b.kernel->setArg(5, bidx_);
      b.kernel->setArg(6, nbrs_);
      b.kernel->setArg(7, mat_);
      b.kernel->setArg(8, beta_);
      b.kernel->setArg(9, bi_);
      b.kernel->setArg(10, d_);
      b.kernel->setArg(11, di_);
      b.kernel->setArg(12, f_);
      b.kernel->setArg(13, numBI());
      b.kernel->setArg(14, l());
      return b;
    }
    const auto gen = codegen::generateKernel(
        lift_acoustics::liftFdMmKernel(rk, branches_), copts_);
    b.range = launchConfigFor(gen, boundaryPoints(), local);
    auto program = ctx_.buildProgram(gen.source);
    b.kernel = std::make_shared<ocl::Kernel>(program, gen.name);
    bindKernelArgs(*b.kernel, gen.plan,
                   ArgMap{{"boundaryIndices", bidx_},
                          {"material", mat_},
                          {"nbrs", nbrs_},
                          {"beta", beta_},
                          {"BI", bi_},
                          {"D", d_},
                          {"DI", di_},
                          {"F", f_},
                          {"next", next_},
                          {"prev", prev_},
                          {"g1", g1_},
                          {"v1", v1_},
                          {"v2", v2_},
                          {"cells", cellsI()},
                          {"numB", numBI()},
                          {"M", numMaterialsI()},
                          {"l", l()}});
    return b;
  }

private:
  int nx() const { return grid_->nx; }
  int nxny() const { return grid_->nx * grid_->ny; }
  int cellsI() const { return static_cast<int>(grid_->cells()); }
  int numBI() const { return static_cast<int>(grid_->boundaryPoints()); }
  int numMaterialsI() const {
    int maxId = 0;
    for (int id : grid_->material) maxId = std::max(maxId, id);
    return maxId + 1;
  }
  T l() const { return static_cast<T>(params_.l()); }
  T l2() const { return static_cast<T>(params_.l2()); }
  T betaScalar() const {
    return static_cast<T>(acoustics::defaultMaterials(1, 0)[0].beta);
  }

  ocl::Context& ctx_;
  ocl::CommandQueue q_;
  std::shared_ptr<const acoustics::RoomGrid> grid_;
  acoustics::SimParams params_;
  codegen::CodegenOptions copts_ = codegen::CodegenOptions::fromEnv();
  int branches_ = 0;
  ocl::BufferPtr prev_, curr_, next_, nbrs_, bidx_, mat_, beta_;
  ocl::BufferPtr bi_, d_, di_, f_, g1_, v1_, v2_;
};

}  // namespace lifta::harness
