#include "harness/autotune.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace lifta::harness {

TuneResult autotuneWorkGroup(
    const std::function<double(std::size_t)>& launch,
    const std::vector<std::size_t>& candidates, int iters, int warmup) {
  LIFTA_CHECK(!candidates.empty(), "no work-group candidates");
  TuneResult result;
  for (std::size_t local : candidates) {
    std::vector<double> ms;
    try {
      for (int i = 0; i < warmup; ++i) launch(local);
      ms.reserve(static_cast<std::size_t>(iters));
      for (int i = 0; i < iters; ++i) ms.push_back(launch(local));
    } catch (const Error&) {
      continue;  // e.g. work-group size exceeds the device limit
    }
    const double med = median(std::move(ms));
    result.samples.emplace_back(local, med);
    if (result.bestLocalSize == 0 || med < result.bestMedianMs) {
      result.bestLocalSize = local;
      result.bestMedianMs = med;
    }
  }
  if (result.bestLocalSize == 0) {
    throw Error("autotune: every work-group candidate failed");
  }
  return result;
}

}  // namespace lifta::harness
