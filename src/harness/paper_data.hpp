// The paper's published measurements (appendix Tables IV, V, VI): median
// kernel run times in milliseconds on the authors' GPUs. The benchmarks
// print these next to our CPU-substrate measurements so the *relative*
// claims (LIFT vs handwritten parity, FD-MM vs FI-MM cost, single vs double
// gaps, the 336 dip) can be compared directly; absolute times are not
// expected to match a different machine.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace lifta::harness {

struct PaperRow {
  std::string platform;  // as printed in the paper
  std::string version;   // "OpenCL" (handwritten) or "LIFT"
  std::string size;      // "602", "336", "302"
  std::string shape;     // "box", "dome" ("" for Table IV)
  double singleMs = 0.0;
  double doubleMs = 0.0;
};

/// Table IV — naive frequency-independent (FI) fused kernel, box only.
const std::vector<PaperRow>& paperTable4();
/// Table V — FI-MM boundary kernel.
const std::vector<PaperRow>& paperTable5();
/// Table VI — FD-MM boundary kernel (branch value 3).
const std::vector<PaperRow>& paperTable6();

/// Looks up one row. `shape` is ignored for Table IV.
std::optional<PaperRow> findPaperRow(const std::vector<PaperRow>& table,
                                     const std::string& platform,
                                     const std::string& version,
                                     const std::string& size,
                                     const std::string& shape);

/// Mean LIFT/OpenCL time ratio over a table for the given precision —
/// the paper's headline "on par" quantity (≈1.0).
double paperLiftOverOpenclRatio(const std::vector<PaperRow>& table,
                                bool doublePrecision);

}  // namespace lifta::harness
