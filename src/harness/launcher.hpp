// Helpers for launching generated kernels: name-based argument binding
// against a kernel's MemoryPlan, so tests and benchmarks can provide
// arguments as {name -> buffer/scalar} regardless of ABI slot order.
#pragma once

#include <map>
#include <string>
#include <variant>

#include "codegen/kernel_codegen.hpp"
#include "ocl/runtime.hpp"

namespace lifta::harness {

using ArgValue = std::variant<ocl::BufferPtr, int, float, double>;
using ArgMap = std::map<std::string, ArgValue>;

/// Binds every argument of `plan` from `values` by name.
/// Throws lifta::Error when a name is missing or a scalar/buffer kind
/// mismatches the plan.
void bindKernelArgs(ocl::Kernel& kernel, const memory::MemoryPlan& plan,
                    const ArgMap& values);

/// Uploads a host vector into a fresh device buffer.
template <typename T>
ocl::BufferPtr upload(ocl::Context& ctx, ocl::CommandQueue& q,
                      const std::vector<T>& host) {
  auto buf = ctx.allocate(host.size() * sizeof(T));
  if (!host.empty()) q.enqueueWrite(*buf, host.data(), host.size() * sizeof(T));
  return buf;
}

/// Downloads a device buffer into a host vector of `count` elements.
template <typename T>
std::vector<T> download(ocl::CommandQueue& q, const ocl::BufferPtr& buf,
                        std::size_t count) {
  std::vector<T> host(count);
  if (count != 0) q.enqueueRead(*buf, host.data(), count * sizeof(T));
  return host;
}

/// Picks the launch configuration used throughout the benchmarks: a
/// grid-stride NDRange whose global size covers at most `n` work-items
/// rounded to work-groups of `local`.
ocl::NDRange launchConfig(std::size_t n, std::size_t local,
                          std::size_t maxGlobal = 1u << 16);

/// Launch geometry matched to how a generated kernel distributes work.
/// Grid-stride kernels get the plain launchConfig over `n`; chunk-scheduled
/// kernels (gen.preferredChunk > 0 — each work item covers a contiguous
/// chunk by itself) shrink the launch to ~ceil(n / chunk) items, with a
/// 256-item floor for parallel slack. The kernel's own chunk computation
/// covers [0, n) under any geometry, so this is purely a dispatch-overhead
/// optimization.
ocl::NDRange launchConfigFor(const codegen::GeneratedKernel& gen,
                             std::size_t n, std::size_t local,
                             std::size_t maxGlobal = 1u << 16);

}  // namespace lifta::harness
