// Work-group autotuning — §VI's "all benchmarks have been hand-tuned by
// workgroup size and the best result is reported", as a library: measure a
// launch at each candidate local size and return the fastest.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace lifta::harness {

struct TuneResult {
  std::size_t bestLocalSize = 0;
  double bestMedianMs = 0.0;
  /// (localSize, medianMs) for every candidate, in candidate order.
  std::vector<std::pair<std::size_t, double>> samples;
};

/// Measures `launch(localSize)` (which must perform one execution and
/// return its event milliseconds) `iters` times per candidate and picks the
/// best median. Candidates that throw (e.g. exceeding the device limit) are
/// skipped; throws lifta::Error if none succeed.
TuneResult autotuneWorkGroup(
    const std::function<double(std::size_t)>& launch,
    const std::vector<std::size_t>& candidates = {16, 32, 64, 128, 256},
    int iters = 7, int warmup = 2);

}  // namespace lifta::harness
