// Column-aligned plain-text tables for the benchmark binaries, which print
// the same rows the paper's tables report (platform, version, size, shape,
// single/double ms, throughput).
#pragma once

#include <string>
#include <vector>

namespace lifta::harness {

class Table {
public:
  explicit Table(std::vector<std::string> headers);

  void addRow(std::vector<std::string> cells);
  /// Renders with a header underline and two-space column gaps.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats milliseconds with paper-style precision (two decimals).
std::string fmtMs(double ms);
/// Formats a throughput in mega-updates per second.
std::string fmtMups(double mups);

}  // namespace lifta::harness
