#include "harness/bench_common.hpp"

#include <cstdio>

#include "codegen/kernel_codegen.hpp"
#include "common/stats.hpp"

namespace lifta::harness {

BenchOptions BenchOptions::fromArgs(int argc, const char* const* argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  BenchOptions opt;
  opt.full = args.getBool("full", opt.full);
  opt.iters = static_cast<int>(args.getInt("iters", opt.iters));
  opt.warmup = static_cast<int>(args.getInt("warmup", opt.warmup));
  opt.localSize =
      static_cast<std::size_t>(args.getInt("local", static_cast<int>(opt.localSize)));
  opt.autotune = args.getBool("autotune", opt.autotune);
  opt.branches = static_cast<int>(args.getInt("branches", opt.branches));
  opt.allPlatforms = args.getBool("all-platforms", opt.allPlatforms);
  return opt;
}

std::vector<SizedRoom> benchRooms(acoustics::RoomShape shape, bool full) {
  using acoustics::Room;
  if (full) {
    // Table II volume dims + halo.
    return {
        {"602", Room{shape, 604, 404, 304}},
        {"336", Room{shape, 338, 338, 338}},
        {"302", Room{shape, 304, 204, 154}},
    };
  }
  // ~1/8 linear scale: preserves the aspect-ratio relationships the paper's
  // §VII-B1 discussion relies on (cuboid with long x vs. uniform cube).
  return {
      {"602", Room{shape, 77, 52, 39}},
      {"336", Room{shape, 44, 44, 44}},
      {"302", Room{shape, 39, 27, 21}},
  };
}

std::vector<ocl::DeviceProfile> benchPlatforms(const BenchOptions& opt) {
  if (opt.allPlatforms) return ocl::paperPlatforms();
  return {ocl::nativeDevice()};
}

double medianKernelMs(const std::function<double()>& launch,
                      const BenchOptions& opt) {
  for (int i = 0; i < opt.warmup; ++i) launch();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(opt.iters));
  for (int i = 0; i < opt.iters; ++i) samples.push_back(launch());
  return median(std::move(samples));
}

double mups(std::size_t updates, double medianMs) {
  if (medianMs <= 0.0) return 0.0;
  return static_cast<double>(updates) / (medianMs * 1e-3) / 1e6;
}

void printBenchBanner(const std::string& title, const BenchOptions& opt) {
  std::printf("=== %s ===\n", title.c_str());
  const std::string local =
      opt.autotune ? "autotuned" : std::to_string(opt.localSize);
  std::printf(
      "substrate: simulated OpenCL runtime on the host CPU (no GPU in this\n"
      "environment); LIFT-generated and hand-written kernels both execute\n"
      "through the same JIT + NDRange executor, preserving the paper's\n"
      "LIFT-vs-handwritten comparison. rooms: %s (use --full for Table II\n"
      "sizes), iters=%d, local=%s\n\n",
      opt.full ? "paper Table II sizes" : "1/8-scale Table II sizes",
      opt.iters, local.c_str());
}

void printStepProfile(const std::string& label,
                      const acoustics::StepProfiler& profiler) {
  std::printf("%s", profiler.report(label).c_str());
}

const char* parityVerdict(double liftOverOpenclRatio) {
  if (liftOverOpenclRatio > 0.8 && liftOverOpenclRatio < 1.25) {
    return "[reproduced]";
  }
  if (liftOverOpenclRatio <= 0.8 &&
      codegen::CodegenOptions::fromEnv().optimize) {
    return "[exceeds paper — codegen optimizer on; set LIFTA_CODEGEN_OPT=0 "
           "for the paper-form comparison]";
  }
  return "[deviates — see EXPERIMENTS.md]";
}

}  // namespace lifta::harness
