#include "harness/bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "acoustics/materials.hpp"
#include "acoustics/reference_kernels.hpp"
#include "acoustics/sim_params.hpp"
#include "codegen/kernel_codegen.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "harness/table.hpp"

namespace lifta::harness {

BenchOptions BenchOptions::fromArgs(int argc, const char* const* argv) {
  const CliArgs args = CliArgs::parse(argc, argv);
  BenchOptions opt;
  opt.full = args.getBool("full", opt.full);
  opt.iters = static_cast<int>(args.getInt("iters", opt.iters));
  opt.warmup = static_cast<int>(args.getInt("warmup", opt.warmup));
  opt.localSize =
      static_cast<std::size_t>(args.getInt("local", static_cast<int>(opt.localSize)));
  opt.autotune = args.getBool("autotune", opt.autotune);
  opt.branches = static_cast<int>(args.getInt("branches", opt.branches));
  opt.allPlatforms = args.getBool("all-platforms", opt.allPlatforms);
  return opt;
}

std::vector<SizedRoom> benchRooms(acoustics::RoomShape shape, bool full) {
  using acoustics::Room;
  if (full) {
    // Table II volume dims + halo.
    return {
        {"602", Room{shape, 604, 404, 304}},
        {"336", Room{shape, 338, 338, 338}},
        {"302", Room{shape, 304, 204, 154}},
    };
  }
  // ~1/8 linear scale: preserves the aspect-ratio relationships the paper's
  // §VII-B1 discussion relies on (cuboid with long x vs. uniform cube).
  return {
      {"602", Room{shape, 77, 52, 39}},
      {"336", Room{shape, 44, 44, 44}},
      {"302", Room{shape, 39, 27, 21}},
  };
}

std::vector<ocl::DeviceProfile> benchPlatforms(const BenchOptions& opt) {
  if (opt.allPlatforms) return ocl::paperPlatforms();
  return {ocl::nativeDevice()};
}

double medianKernelMs(const std::function<double()>& launch,
                      const BenchOptions& opt) {
  for (int i = 0; i < opt.warmup; ++i) launch();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(opt.iters));
  for (int i = 0; i < opt.iters; ++i) samples.push_back(launch());
  return median(std::move(samples));
}

double mups(std::size_t updates, double medianMs) {
  if (medianMs <= 0.0) return 0.0;
  return static_cast<double>(updates) / (medianMs * 1e-3) / 1e6;
}

void printBenchBanner(const std::string& title, const BenchOptions& opt) {
  std::printf("=== %s ===\n", title.c_str());
  const std::string local =
      opt.autotune ? "autotuned" : std::to_string(opt.localSize);
  std::printf(
      "substrate: simulated OpenCL runtime on the host CPU (no GPU in this\n"
      "environment); LIFT-generated and hand-written kernels both execute\n"
      "through the same JIT + NDRange executor, preserving the paper's\n"
      "LIFT-vs-handwritten comparison. rooms: %s (use --full for Table II\n"
      "sizes), iters=%d, local=%s\n\n",
      opt.full ? "paper Table II sizes" : "1/8-scale Table II sizes",
      opt.iters, local.c_str());
}

void printStepProfile(const std::string& label,
                      const acoustics::StepProfiler& profiler) {
  std::printf("%s", profiler.report(label).c_str());
}

std::vector<BoundaryClassTiming> fdmmClassBreakdown(
    const acoustics::Room& room, const BenchOptions& opt) {
  const auto grid = acoustics::voxelizeCached(room, 3);
  const auto& cp = grid->boundaryClasses;
  const auto mats = acoustics::defaultMaterials(3, opt.branches);
  const auto beta = acoustics::betaTable(mats);
  const auto fd = acoustics::deriveFdCoeffs(mats, opt.branches,
                                            acoustics::SimParams{}.Ts());
  const std::size_t cells = grid->cells();
  const std::size_t numB = grid->boundaryPoints();
  const std::size_t stateLen = static_cast<std::size_t>(opt.branches) * numB;
  std::vector<double> prev(cells), next(cells), g1(stateLen), v1(stateLen),
      v2(stateLen);
  // Small nonzero values: the update contracts (divides by 1 + cf), so
  // repeated in-place application stays bounded and never denormal.
  for (std::size_t i = 0; i < cells; ++i) {
    prev[i] = 1e-3 * static_cast<double>(i % 7 + 1);
    next[i] = 1e-3 * static_cast<double>(i % 5 + 1);
  }
  for (std::size_t i = 0; i < stateLen; ++i) {
    g1[i] = 1e-4 * static_cast<double>(i % 3 + 1);
    v1[i] = 0.0;
    v2[i] = 1e-4 * static_cast<double>(i % 4 + 1);
  }
  const double l = acoustics::SimParams{}.l();

  std::vector<BoundaryClassTiming> out;
  for (int c = 0; c < acoustics::kNumBoundaryClasses; ++c) {
    const std::int32_t count = cp.classCount(c);
    if (count == 0) continue;
    const std::int64_t j0 = cp.classBegin[static_cast<std::size_t>(c)];
    const std::int64_t j1 = cp.classBegin[static_cast<std::size_t>(c) + 1];
    const int nbr = acoustics::boundaryClassNbr(c);
    // Amortize timer resolution for tiny classes (the 8 corners).
    const int repeats = std::max(1, 4096 / std::max(1, count));
    std::vector<double> samples;
    for (int it = 0; it < std::max(3, opt.iters); ++it) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < repeats; ++r) {
        if (nbr >= 0) {
          acoustics::refFdMmClassRange(
              cp.cellSorted.data(), cp.matSorted.data(), cp.order.data(), nbr,
              beta.data(), fd.BI.data(), fd.D.data(), fd.DI.data(),
              fd.F.data(), opt.branches, prev.data(), next.data(), g1.data(),
              v1.data(), v2.data(), static_cast<std::int64_t>(numB), j0, j1,
              l);
        } else {
          acoustics::refFdMmMixedRange(
              cp.cellSorted.data(), cp.nbrSorted.data(), cp.matSorted.data(),
              cp.order.data(), beta.data(), fd.BI.data(), fd.D.data(),
              fd.DI.data(), fd.F.data(), opt.branches, prev.data(),
              next.data(), g1.data(), v1.data(), v2.data(),
              static_cast<std::int64_t>(numB), j0, j1, l);
        }
      }
      const auto t1 = std::chrono::steady_clock::now();
      samples.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count() /
          repeats);
    }
    out.push_back({c, count, summarize(samples).median});
  }
  return out;
}

std::string renderClassBreakdown(
    const std::vector<BoundaryClassTiming>& rows) {
  double totalMs = 0.0;
  for (const auto& r : rows) totalMs += r.ms;
  Table table({"Class", "nbr", "Points", "ms", "Share"});
  for (const auto& r : rows) {
    const int nbr = acoustics::boundaryClassNbr(r.cls);
    table.addRow(
        {acoustics::boundaryClassName(r.cls),
         nbr >= 0 ? std::to_string(nbr) : "0-3", std::to_string(r.count),
         strformat("%.4f", r.ms),
         strformat("%.1f%%", totalMs > 0.0 ? 100.0 * r.ms / totalMs : 0.0)});
  }
  return table.render();
}

const char* parityVerdict(double liftOverOpenclRatio) {
  if (liftOverOpenclRatio > 0.8 && liftOverOpenclRatio < 1.25) {
    return "[reproduced]";
  }
  if (liftOverOpenclRatio <= 0.8 &&
      codegen::CodegenOptions::fromEnv().optimize) {
    return "[exceeds paper — codegen optimizer on; set LIFTA_CODEGEN_OPT=0 "
           "for the paper-form comparison]";
  }
  return "[deviates — see EXPERIMENTS.md]";
}

}  // namespace lifta::harness
